//! Demand-driven greedy master–slave execution on tree platforms.
//!
//! The classical online protocol (paper ref \[11\]): every non-master node
//! requests one task from its parent whenever it holds none (requests are
//! control messages, modeled as instantaneous); a parent with a task on
//! hand and a free send port serves one pending request at a time. Task
//! files are *atomic*: shipping one over edge `e` occupies the parent's
//! send port and the child's receive port for `c_e` time units; computing
//! one on `P_i` takes `w_i`. Computation fully overlaps communication
//! (§2 model).
//!
//! The service order is the policy knob ref \[11\] studies: FIFO and
//! round-robin are what naive masters do; *bandwidth-centric* (serve the
//! child with the cheapest link first, regardless of its speed) is the
//! provably optimal priority for single-level trees — the reproduction
//! compares all of them against the steady-state LP bound.

use ss_num::Ratio;
use ss_platform::{NodeId, Platform};
use ss_sim::EventQueue;

/// Order in which a parent serves pending child requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceOrder {
    /// First request first.
    Fifo,
    /// Cycle through children.
    RoundRobin,
    /// Child with the smallest edge cost `c` first (paper ref \[11\]).
    BandwidthCentric,
    /// Child with the smallest compute weight `w` first.
    FastestWorker,
}

/// Result of a greedy run.
#[derive(Clone, Debug)]
pub struct GreedyOutcome {
    /// Completion time of each task, sorted ascending.
    pub completions: Vec<Ratio>,
    /// Time the last task finished (makespan).
    pub makespan: Ratio,
}

impl GreedyOutcome {
    /// Tasks finished by time `t`.
    pub fn completed_by(&self, t: &Ratio) -> usize {
        self.completions.partition_point(|c| c <= t)
    }

    /// Average throughput over the whole run.
    pub fn throughput(&self) -> Ratio {
        if self.makespan.is_zero() {
            return Ratio::zero();
        }
        &Ratio::from(self.completions.len()) / &self.makespan
    }
}

#[derive(Clone, Copy, Debug)]
enum Event {
    ComputeDone(usize),
    TransferDone { parent: usize, child: usize },
}

struct NodeState {
    parent: Option<usize>,
    children: Vec<usize>,
    edge_cost: Ratio, // cost of the parent -> this link (zero for master)
    w: Option<Ratio>,
    holding: u64,
    computing: bool,
    receiving: bool,
    requested: bool,
    sending: bool,
    pending: Vec<usize>, // child indices in request order
    rr_cursor: usize,
}

/// Simulate greedy demand-driven execution of `n` tasks on a tree rooted
/// at `master`.
///
/// The platform must be a tree when restricted to the edges used: every
/// non-master node needs exactly one parent — the unique in-edge from the
/// node closer to the master. Returns an error if the platform is not
/// tree-shaped from the master.
pub fn simulate_tree_greedy(
    g: &Platform,
    master: NodeId,
    n: u64,
    order: ServiceOrder,
) -> Result<GreedyOutcome, String> {
    let p = g.num_nodes();
    // Build the tree: BFS from master over directed edges.
    let depths = g.bfs_depths(master);
    let mut nodes: Vec<NodeState> = (0..p)
        .map(|i| NodeState {
            parent: None,
            children: Vec::new(),
            edge_cost: Ratio::zero(),
            w: g.node(NodeId(i)).w.as_ratio().cloned(),
            holding: 0,
            computing: false,
            receiving: false,
            requested: false,
            sending: false,
            pending: Vec::new(),
            rr_cursor: 0,
        })
        .collect();
    for i in 0..p {
        if i == master.index() {
            continue;
        }
        let Some(di) = depths[i] else {
            return Err(format!(
                "node {} unreachable from master",
                g.node(NodeId(i)).name
            ));
        };
        // Parent = the in-neighbor one BFS level up (unique on a tree).
        let mut parents = g
            .in_edges(NodeId(i))
            .filter(|e| depths[e.src.index()] == Some(di - 1));
        let pe = parents.next().ok_or_else(|| "no parent edge".to_string())?;
        if parents.next().is_some() {
            return Err("platform is not a tree from the master".into());
        }
        nodes[i].parent = Some(pe.src.index());
        nodes[i].edge_cost = pe.c.clone();
        nodes[pe.src.index()].children.push(i);
    }

    let mut pool = n; // undelivered tasks at the master
    let mut remaining = n; // tasks not yet computed anywhere
    let mut completions: Vec<Ratio> = Vec::with_capacity(n as usize);
    let mut queue: EventQueue<Event> = EventQueue::new();

    // The master "holds" the pool; children request at t = 0.
    fn request(nodes: &mut [NodeState], child: usize) {
        let Some(parent) = nodes[child].parent else {
            return;
        };
        if nodes[child].requested || nodes[child].receiving {
            return;
        }
        nodes[child].requested = true;
        nodes[parent].pending.push(child);
    }

    fn pick(nodes: &NodeState, order: ServiceOrder, states: &[NodeState]) -> Option<usize> {
        if nodes.pending.is_empty() {
            return None;
        }
        let idx = match order {
            ServiceOrder::Fifo => 0,
            ServiceOrder::RoundRobin => {
                // Serve the pending child that comes next in child order.
                let start = nodes.rr_cursor % nodes.children.len().max(1);
                let mut best = 0;
                let mut best_key = usize::MAX;
                for (qi, &c) in nodes.pending.iter().enumerate() {
                    let pos = nodes.children.iter().position(|&x| x == c).unwrap_or(0);
                    let key = (pos + nodes.children.len() - start) % nodes.children.len().max(1);
                    if key < best_key {
                        best_key = key;
                        best = qi;
                    }
                }
                best
            }
            ServiceOrder::BandwidthCentric => {
                let mut best = 0;
                for (qi, &c) in nodes.pending.iter().enumerate() {
                    if states[c].edge_cost < states[nodes.pending[best]].edge_cost
                        || (states[c].edge_cost == states[nodes.pending[best]].edge_cost
                            && c < nodes.pending[best])
                    {
                        best = qi;
                    }
                }
                best
            }
            ServiceOrder::FastestWorker => {
                let key = |c: usize| {
                    states[c]
                        .w
                        .clone()
                        .unwrap_or_else(|| Ratio::from_int(i64::MAX))
                };
                let mut best = 0;
                for (qi, &c) in nodes.pending.iter().enumerate() {
                    if key(c) < key(nodes.pending[best])
                        || (key(c) == key(nodes.pending[best]) && c < nodes.pending[best])
                    {
                        best = qi;
                    }
                }
                best
            }
        };
        Some(idx)
    }

    // Try to start activities at `now` for node i; may cascade.
    fn activate(
        i: usize,
        now: &Ratio,
        nodes: &mut [NodeState],
        queue: &mut EventQueue<Event>,
        pool: &mut u64,
        master: usize,
        order: ServiceOrder,
    ) {
        // Start computing if idle and holding a task.
        let can_compute = nodes[i].w.is_some() && !nodes[i].computing;
        if can_compute {
            let has_task = if i == master {
                *pool > 0
            } else {
                nodes[i].holding > 0
            };
            if has_task {
                if i == master {
                    *pool -= 1;
                } else {
                    nodes[i].holding -= 1;
                }
                nodes[i].computing = true;
                let w = nodes[i].w.clone().unwrap();
                queue.push(now + &w, Event::ComputeDone(i));
            }
        }
        // Serve one pending child if the send port is free and a task is
        // available to forward.
        if !nodes[i].sending {
            let has_task = if i == master {
                *pool > 0
            } else {
                nodes[i].holding > 0
            };
            if has_task {
                // Split borrow: pick needs &nodes[i] and &nodes[..].
                let choice = {
                    let states: &[NodeState] = nodes;
                    pick(&states[i], order, states)
                };
                if let Some(qi) = choice {
                    let child = nodes[i].pending.remove(qi);
                    if i == master {
                        *pool -= 1;
                    } else {
                        nodes[i].holding -= 1;
                    }
                    nodes[i].sending = true;
                    nodes[i].rr_cursor += 1;
                    nodes[child].receiving = true;
                    nodes[child].requested = false;
                    let c = nodes[child].edge_cost.clone();
                    queue.push(now + &c, Event::TransferDone { parent: i, child });
                }
            }
        }
        // Request upstream if dry: interior nodes also pull for their
        // subtree (demand: own compute + pending child requests).
        if i != master {
            let demand = 1 + nodes[i].pending.len() as u64;
            let have = nodes[i].holding + nodes[i].receiving as u64;
            if have < demand {
                request(nodes, i);
            }
        }
    }

    // Kick-off: leaves request; propagate by activating everything once.
    for i in 0..p {
        if i != master.index() {
            request(&mut nodes, i);
        }
    }
    let t0 = Ratio::zero();
    // Activate deepest-first so requests propagate to the master in one pass.
    let mut by_depth: Vec<usize> = (0..p).collect();
    by_depth.sort_by_key(|&i| std::cmp::Reverse(depths[i].unwrap_or(0)));
    for &i in &by_depth {
        activate(
            i,
            &t0,
            &mut nodes,
            &mut queue,
            &mut pool,
            master.index(),
            order,
        );
    }

    while let Some((now, ev)) = queue.pop() {
        match ev {
            Event::ComputeDone(i) => {
                nodes[i].computing = false;
                completions.push(now.clone());
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
                activate(
                    i,
                    &now,
                    &mut nodes,
                    &mut queue,
                    &mut pool,
                    master.index(),
                    order,
                );
            }
            Event::TransferDone { parent, child } => {
                nodes[parent].sending = false;
                nodes[child].receiving = false;
                nodes[child].holding += 1;
                activate(
                    child,
                    &now,
                    &mut nodes,
                    &mut queue,
                    &mut pool,
                    master.index(),
                    order,
                );
                activate(
                    parent,
                    &now,
                    &mut nodes,
                    &mut queue,
                    &mut pool,
                    master.index(),
                    order,
                );
            }
        }
    }

    completions.sort();
    let makespan = completions.last().cloned().unwrap_or_else(Ratio::zero);
    Ok(GreedyOutcome {
        completions,
        makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_core::master_slave;
    use ss_platform::{topo, Weight};

    fn ri(n: i64) -> Ratio {
        Ratio::from_int(n)
    }

    /// Solo master: n tasks take n * w.
    #[test]
    fn master_alone() {
        let mut g = Platform::new();
        let m = g.add_node("m", Weight::from_int(3));
        let out = simulate_tree_greedy(&g, m, 5, ServiceOrder::Fifo).unwrap();
        assert_eq!(out.makespan, ri(15));
        assert_eq!(out.completions.len(), 5);
    }

    /// One worker: pipeline of send(c=1) + compute(w=2); master w=2.
    #[test]
    fn master_and_worker_pipeline() {
        let mut g = Platform::new();
        let m = g.add_node("m", Weight::from_int(2));
        let w = g.add_node("w", Weight::from_int(2));
        g.add_edge(m, w, ri(1)).unwrap();
        let out = simulate_tree_greedy(&g, m, 10, ServiceOrder::Fifo).unwrap();
        assert_eq!(out.completions.len(), 10);
        // Steady-state LP rate is 1 task/unit; greedy should be close for
        // 10 tasks but cannot beat the bound.
        let sol = master_slave::solve(&g, m).unwrap();
        let bound = &Ratio::from(10u64) / &sol.ntask;
        assert!(out.makespan >= bound);
    }

    /// Greedy never exceeds the LP bound on random trees, for any policy.
    #[test]
    fn lp_bound_dominates_greedy() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        for seed in 0..4 {
            let mut rng = StdRng::seed_from_u64(600 + seed);
            let (g, m) = topo::random_tree(&mut rng, 6, &topo::ParamRange::default());
            let sol = master_slave::solve(&g, m).unwrap();
            for order in [
                ServiceOrder::Fifo,
                ServiceOrder::RoundRobin,
                ServiceOrder::BandwidthCentric,
                ServiceOrder::FastestWorker,
            ] {
                let n = 60u64;
                let out = simulate_tree_greedy(&g, m, n, order).unwrap();
                assert_eq!(out.completions.len(), n as usize);
                // Makespan can never beat n / ntask.
                let lb = &Ratio::from(n) / &sol.ntask;
                assert!(
                    out.makespan >= lb,
                    "seed {seed} {order:?}: makespan {} < bound {}",
                    out.makespan,
                    lb
                );
            }
        }
    }

    /// The bandwidth-centric order serves cheap links first; on a star
    /// with one cheap-fast and one expensive-slow child it beats FIFO-ish
    /// worst cases and never loses to serving the slow child first.
    #[test]
    fn bandwidth_centric_sensible() {
        let mut g = Platform::new();
        let m = g.add_node("m", Weight::from_int(100));
        let fast = g.add_node("fast", Weight::from_int(1));
        let slow = g.add_node("slow", Weight::from_int(1));
        g.add_edge(m, fast, ri(1)).unwrap();
        g.add_edge(m, slow, ri(5)).unwrap();
        let bc = simulate_tree_greedy(&g, m, 40, ServiceOrder::BandwidthCentric).unwrap();
        let fifo = simulate_tree_greedy(&g, m, 40, ServiceOrder::Fifo).unwrap();
        assert!(bc.makespan <= fifo.makespan);
    }

    /// Two-level tree: interior nodes forward to their subtrees.
    #[test]
    fn two_level_tree_forwards() {
        let mut g = Platform::new();
        let m = g.add_node("m", Weight::from_int(10));
        let mid = g.add_node("mid", Weight::from_int(10));
        let leaf = g.add_node("leaf", Weight::from_int(1));
        g.add_edge(m, mid, ri(1)).unwrap();
        g.add_edge(mid, leaf, ri(1)).unwrap();
        let out = simulate_tree_greedy(&g, m, 20, ServiceOrder::Fifo).unwrap();
        assert_eq!(out.completions.len(), 20);
        // The fast leaf must have done most of the work: makespan well
        // under solo-master time (200) and under mid-only time.
        assert!(out.makespan < ri(60), "makespan {}", out.makespan);
    }

    /// Non-tree platforms are rejected.
    #[test]
    fn non_tree_rejected() {
        let mut g = Platform::new();
        let m = g.add_node("m", Weight::from_int(1));
        let a = g.add_node("a", Weight::from_int(1));
        let b = g.add_node("b", Weight::from_int(1));
        g.add_edge(m, a, ri(1)).unwrap();
        g.add_edge(m, b, ri(1)).unwrap();
        g.add_edge(a, b, ri(1)).unwrap(); // second parent for b at same depth? no—b depth 1 via m; a->b is depth-1 to depth-1: not a parent edge
                                          // b has exactly one parent (m) at depth 0; a->b is a lateral edge and
                                          // is ignored by the tree builder, so this IS accepted. Make a true
                                          // multi-parent case instead:
        let c = g.add_node("c", Weight::from_int(1));
        g.add_edge(a, c, ri(1)).unwrap();
        g.add_edge(b, c, ri(1)).unwrap(); // c has two depth-1 parents
        let err = simulate_tree_greedy(&g, m, 5, ServiceOrder::Fifo);
        assert!(err.is_err());
    }

    /// completed_by is monotone and consistent with throughput.
    #[test]
    fn outcome_accessors() {
        let mut g = Platform::new();
        let m = g.add_node("m", Weight::from_int(1));
        let w = g.add_node("w", Weight::from_int(1));
        g.add_edge(m, w, ri(1)).unwrap();
        let out = simulate_tree_greedy(&g, m, 8, ServiceOrder::Fifo).unwrap();
        let half = out.completed_by(&(&out.makespan / &ri(2)));
        let all = out.completed_by(&out.makespan);
        assert!(half <= all);
        assert_eq!(all, 8);
        assert!(out.throughput().is_positive());
    }
}
