//! Property-based tests: ring/field laws for `BigInt` and `Ratio`, checked
//! against `i128` reference arithmetic where a reference exists.

use proptest::prelude::*;
use ss_num::{BigInt, Ratio};

fn big(x: i128) -> BigInt {
    BigInt::from(x)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn bigint_add_matches_i128(a in -(1i128 << 100)..(1i128 << 100), b in -(1i128 << 100)..(1i128 << 100)) {
        prop_assert_eq!(big(a) + big(b), big(a + b));
    }

    #[test]
    fn bigint_sub_matches_i128(a in -(1i128 << 100)..(1i128 << 100), b in -(1i128 << 100)..(1i128 << 100)) {
        prop_assert_eq!(big(a) - big(b), big(a - b));
    }

    #[test]
    fn bigint_mul_matches_i128(a in -(1i128 << 60)..(1i128 << 60), b in -(1i128 << 60)..(1i128 << 60)) {
        prop_assert_eq!(big(a) * big(b), big(a * b));
    }

    #[test]
    fn bigint_divrem_matches_i128(a in any::<i128>(), b in any::<i128>()) {
        prop_assume!(b != 0);
        prop_assume!(!(a == i128::MIN && b == -1));
        let (q, r) = big(a).div_rem(&big(b));
        prop_assert_eq!(q, big(a / b));
        prop_assert_eq!(r, big(a % b));
    }

    #[test]
    fn bigint_divrem_identity_large(a_s in "[1-9][0-9]{40,80}", b_s in "[1-9][0-9]{10,35}") {
        let a: BigInt = a_s.parse().unwrap();
        let b: BigInt = b_s.parse().unwrap();
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(&q * &b + &r, a);
        prop_assert!(r.abs() < b.abs());
        prop_assert!(!r.is_negative());
    }

    #[test]
    fn bigint_mul_commutes_associates(a_s in "[0-9]{1,40}", b_s in "[0-9]{1,40}", c_s in "[0-9]{1,40}") {
        let a: BigInt = a_s.parse().unwrap();
        let b: BigInt = b_s.parse().unwrap();
        let c: BigInt = c_s.parse().unwrap();
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!((&a * &b) * &c, &a * (&b * &c));
        prop_assert_eq!(&a * (&b + &c), &a * &b + &a * &c);
    }

    #[test]
    fn bigint_display_parse_roundtrip(a_s in "-?[1-9][0-9]{0,60}") {
        let a: BigInt = a_s.parse().unwrap();
        prop_assert_eq!(a.to_string(), a_s);
    }

    #[test]
    fn bigint_gcd_properties(a in any::<i64>(), b in any::<i64>()) {
        let g = big(a as i128).gcd(&big(b as i128));
        if a != 0 || b != 0 {
            prop_assert!(g.is_positive());
            prop_assert!((big(a as i128) % &g).is_zero());
            prop_assert!((big(b as i128) % &g).is_zero());
        } else {
            prop_assert!(g.is_zero());
        }
    }

    #[test]
    fn ratio_field_laws(
        an in -1000i64..1000, ad in 1i64..1000,
        bn in -1000i64..1000, bd in 1i64..1000,
        cn in -1000i64..1000, cd in 1i64..1000,
    ) {
        let a = Ratio::new(an, ad);
        let b = Ratio::new(bn, bd);
        let c = Ratio::new(cn, cd);
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!((&a + &b) + &c, &a + (&b + &c));
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!((&a * &b) * &c, &a * (&b * &c));
        prop_assert_eq!(&a * (&b + &c), &a * &b + &a * &c);
        prop_assert_eq!(&a + Ratio::zero(), a.clone());
        prop_assert_eq!(&a * Ratio::one(), a.clone());
        prop_assert_eq!(&a - &a, Ratio::zero());
        if !b.is_zero() {
            prop_assert_eq!((&a / &b) * &b, a.clone());
        }
    }

    #[test]
    fn ratio_is_canonical(an in -10_000i64..10_000, ad in 1i64..10_000) {
        let a = Ratio::new(an, ad);
        prop_assert!(a.denom().is_positive());
        prop_assert!(a.numer().gcd(a.denom()).is_one() || a.is_zero());
    }

    #[test]
    fn ratio_ordering_matches_f64(an in -1000i64..1000, ad in 1i64..1000, bn in -1000i64..1000, bd in 1i64..1000) {
        let a = Ratio::new(an, ad);
        let b = Ratio::new(bn, bd);
        let fa = an as f64 / ad as f64;
        let fb = bn as f64 / bd as f64;
        if (fa - fb).abs() > 1e-9 {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn ratio_floor_ceil_bracket(an in -10_000i64..10_000, ad in 1i64..100) {
        let a = Ratio::new(an, ad);
        let fl = Ratio::from(a.floor());
        let ce = Ratio::from(a.ceil());
        prop_assert!(fl <= a && a <= ce);
        prop_assert!(&ce - &fl <= Ratio::one());
        if a.is_integer() {
            prop_assert_eq!(fl, ce);
        }
    }

    #[test]
    fn ratio_parse_display_roundtrip(an in -100_000i64..100_000, ad in 1i64..100_000) {
        let a = Ratio::new(an, ad);
        let s = a.to_string();
        let back: Ratio = s.parse().unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn ratio_approximate_recovers_exact(n in -1000i64..1000, d in 1i64..1000) {
        let x = n as f64 / d as f64;
        let r = Ratio::approximate_f64(x, 1_000_000);
        // Small rationals are recovered exactly by continued fractions.
        prop_assert_eq!(r, Ratio::new(n, d));
    }

    #[test]
    fn lcm_of_denominators_clears(vals in prop::collection::vec((-50i64..50, 1i64..50), 1..8)) {
        let rs: Vec<Ratio> = vals.iter().map(|&(n, d)| Ratio::new(n, d)).collect();
        let l = Ratio::lcm_of_denominators(rs.iter());
        let lr = Ratio::from(l);
        for r in &rs {
            prop_assert!((r * &lr).is_integer());
        }
    }
}
