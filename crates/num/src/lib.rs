//! # ss-num — exact arithmetic for steady-state scheduling
//!
//! Arbitrary-precision signed integers ([`BigInt`]) and exact rationals
//! ([`Ratio`]) used throughout the steady-state scheduling stack.
//!
//! Exactness is not a luxury here: the schedule-reconstruction step of
//! Beaumont et al. (§4.1) *defines* the period of the steady-state schedule
//! as the least common multiple of the denominators of the linear-program
//! solution. A floating-point LP solution has no denominators, so the whole
//! pipeline — LP solving, period extraction, integer message counts per
//! period — runs over [`Ratio`].
//!
//! The representation is deliberately simple (sign + little-endian `u64`
//! limbs, schoolbook multiplication, Knuth algorithm D division): the LPs
//! derived from platform graphs are small and the rational coefficients stay
//! short after gcd reduction, so asymptotically fancy algorithms would be
//! wasted complexity. The performance-sensitive inner loops (`add`, `mul`,
//! `div_rem`, `gcd`) operate on limb slices without intermediate
//! allocations.
//!
//! ```
//! use ss_num::{BigInt, Ratio};
//!
//! let a = Ratio::new(1, 3);
//! let b = Ratio::new(1, 6);
//! assert_eq!(a + b, Ratio::new(1, 2));
//!
//! // Period extraction: lcm of denominators.
//! let activities = [Ratio::new(2, 3), Ratio::new(3, 4), Ratio::new(1, 6)];
//! let period = Ratio::lcm_of_denominators(activities.iter());
//! assert_eq!(period, BigInt::from(12));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bigint;
mod ratio;
mod serde_impls;

pub use bigint::{BigInt, ParseBigIntError, Sign};
pub use ratio::{rat, ParseRatioError, Ratio};

/// Greatest common divisor of two `u64`s (binary GCD).
///
/// `gcd64(0, 0) == 0` by convention.
#[inline]
pub fn gcd64(mut a: u64, mut b: u64) -> u64 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            core::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

/// Least common multiple of two `u64`s; panics on overflow.
#[inline]
pub fn lcm64(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    a / gcd64(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd64_basics() {
        assert_eq!(gcd64(0, 0), 0);
        assert_eq!(gcd64(0, 7), 7);
        assert_eq!(gcd64(7, 0), 7);
        assert_eq!(gcd64(12, 18), 6);
        assert_eq!(gcd64(17, 13), 1);
        assert_eq!(gcd64(u64::MAX, u64::MAX), u64::MAX);
    }

    #[test]
    fn lcm64_basics() {
        assert_eq!(lcm64(0, 5), 0);
        assert_eq!(lcm64(4, 6), 12);
        assert_eq!(lcm64(7, 13), 91);
    }
}
