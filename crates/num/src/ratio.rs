//! Exact rational numbers with [`BigInt`] numerator and denominator.

use crate::bigint::{BigInt, Sign};
use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use core::str::FromStr;

/// An exact rational number.
///
/// Invariants: the denominator is strictly positive and
/// `gcd(|numerator|, denominator) == 1`; zero is represented as `0/1`.
///
/// ```
/// use ss_num::Ratio;
/// let half = Ratio::new(1, 2);
/// let third = Ratio::new(1, 3);
/// assert_eq!(&half - &third, Ratio::new(1, 6));
/// assert_eq!((&half * &third).to_string(), "1/6");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: BigInt,
    den: BigInt, // > 0
}

impl Ratio {
    /// Zero (`0/1`).
    #[inline]
    pub fn zero() -> Ratio {
        Ratio {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// One (`1/1`).
    #[inline]
    pub fn one() -> Ratio {
        Ratio {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Build `n/d` from machine integers.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    #[inline]
    pub fn new(n: i64, d: i64) -> Ratio {
        Ratio::from_bigints(BigInt::from(n), BigInt::from(d))
    }

    /// Build `n/d` from big integers, normalizing sign and reducing.
    ///
    /// # Panics
    /// Panics if `d` is zero.
    pub fn from_bigints(n: BigInt, d: BigInt) -> Ratio {
        assert!(!d.is_zero(), "Ratio with zero denominator");
        if n.is_zero() {
            return Ratio::zero();
        }
        let (mut n, mut d) = if d.is_negative() { (-n, -d) } else { (n, d) };
        let g = n.gcd(&d);
        if !g.is_one() {
            n = &n / &g;
            d = &d / &g;
        }
        Ratio { num: n, den: d }
    }

    /// Build from an integer.
    #[inline]
    pub fn from_int(n: i64) -> Ratio {
        Ratio {
            num: BigInt::from(n),
            den: BigInt::one(),
        }
    }

    /// Numerator (sign-carrying, coprime with the denominator).
    #[inline]
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always strictly positive).
    #[inline]
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// `true` iff this is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// `true` iff this is one.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.num.is_one() && self.den.is_one()
    }

    /// `true` iff strictly negative.
    #[inline]
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// `true` iff strictly positive.
    #[inline]
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// `true` iff the value is an integer (denominator 1).
    #[inline]
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Sign as a [`Sign`].
    #[inline]
    pub fn sign(&self) -> Sign {
        self.num.sign()
    }

    /// Absolute value.
    pub fn abs(&self) -> Ratio {
        Ratio {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if `self` is zero.
    pub fn recip(&self) -> Ratio {
        assert!(!self.is_zero(), "reciprocal of zero");
        if self.num.is_negative() {
            Ratio {
                num: -self.den.clone(),
                den: -self.num.clone(),
            }
        } else {
            Ratio {
                num: self.den.clone(),
                den: self.num.clone(),
            }
        }
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_negative() {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_positive() {
            q + BigInt::one()
        } else {
            q
        }
    }

    /// Convert to `f64` (nearest representable; may lose precision).
    pub fn to_f64(&self) -> f64 {
        // Scale so numerator/denominator both fit comfortably in f64 range.
        let nb = self.num.bits() as i64;
        let db = self.den.bits() as i64;
        if nb < 900 && db < 900 {
            return self.num.to_f64() / self.den.to_f64();
        }
        // Shift both down by the same power of two to avoid inf/inf.
        let shift = (nb.max(db) - 512).max(0) as u32;
        let two = BigInt::from(2).pow(shift);
        let n = &self.num / &two;
        let d = &self.den / &two;
        n.to_f64() / d.to_f64()
    }

    /// Exact power with integer exponent (negative exponents invert).
    ///
    /// # Panics
    /// Panics on `0.pow(negative)`.
    pub fn pow(&self, exp: i32) -> Ratio {
        if exp >= 0 {
            Ratio {
                num: self.num.pow(exp as u32),
                den: self.den.pow(exp as u32),
            }
        } else {
            self.recip().pow(-exp)
        }
    }

    /// Minimum of two rationals by value.
    pub fn min(self, other: Ratio) -> Ratio {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals by value.
    pub fn max(self, other: Ratio) -> Ratio {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Least common multiple of the denominators of a sequence of rationals.
    ///
    /// This is the period-extraction primitive of §4.1: given the rational
    /// activity variables of the steady-state LP solution, the schedule
    /// period is `lcm` of their denominators, making every per-period
    /// quantity an exact integer. Returns `1` for an empty sequence.
    pub fn lcm_of_denominators<'a, I: IntoIterator<Item = &'a Ratio>>(iter: I) -> BigInt {
        let mut acc = BigInt::one();
        for r in iter {
            acc = acc.lcm(&r.den);
        }
        acc
    }

    /// Approximate a float by a rational with denominator at most `max_den`
    /// (continued-fraction / Stern-Brocot expansion).
    ///
    /// Used to import measured (floating-point) platform parameters into the
    /// exact pipeline. Panics if `x` is not finite.
    pub fn approximate_f64(x: f64, max_den: u64) -> Ratio {
        assert!(x.is_finite(), "cannot approximate a non-finite float");
        assert!(max_den >= 1);
        let neg = x < 0.0;
        let mut x = x.abs();
        // Continued fraction convergents p/q.
        let (mut p0, mut q0, mut p1, mut q1) = (0u128, 1u128, 1u128, 0u128);
        for _ in 0..64 {
            let a = x.floor();
            if a >= u64::MAX as f64 {
                break;
            }
            let a_u = a as u128;
            let p2 = a_u.saturating_mul(p1).saturating_add(p0);
            let q2 = a_u.saturating_mul(q1).saturating_add(q0);
            if q2 > max_den as u128 {
                break;
            }
            p0 = p1;
            q0 = q1;
            p1 = p2;
            q1 = q2;
            let frac = x - a;
            if frac < 1e-12 {
                break;
            }
            x = 1.0 / frac;
        }
        if q1 == 0 {
            // x larger than u64 range: fall back to the floor.
            return Ratio::from_bigints(BigInt::from(x as u128), BigInt::one());
        }
        let r = Ratio::from_bigints(BigInt::from(p1), BigInt::from(q1));
        if neg {
            -r
        } else {
            r
        }
    }
}

impl Default for Ratio {
    #[inline]
    fn default() -> Ratio {
        Ratio::zero()
    }
}

impl From<i64> for Ratio {
    #[inline]
    fn from(n: i64) -> Ratio {
        Ratio::from_int(n)
    }
}

impl From<u64> for Ratio {
    #[inline]
    fn from(n: u64) -> Ratio {
        Ratio {
            num: BigInt::from(n),
            den: BigInt::one(),
        }
    }
}

impl From<i32> for Ratio {
    #[inline]
    fn from(n: i32) -> Ratio {
        Ratio::from_int(n as i64)
    }
}

impl From<u32> for Ratio {
    #[inline]
    fn from(n: u32) -> Ratio {
        Ratio {
            num: BigInt::from(n),
            den: BigInt::one(),
        }
    }
}

impl From<usize> for Ratio {
    #[inline]
    fn from(n: usize) -> Ratio {
        Ratio {
            num: BigInt::from(n),
            den: BigInt::one(),
        }
    }
}

impl From<BigInt> for Ratio {
    #[inline]
    fn from(n: BigInt) -> Ratio {
        Ratio {
            num: n,
            den: BigInt::one(),
        }
    }
}

// ---------------------------------------------------------------------------
// Arithmetic.
// ---------------------------------------------------------------------------

impl Add for &Ratio {
    type Output = Ratio;
    fn add(self, rhs: &Ratio) -> Ratio {
        // n1/d1 + n2/d2 with a gcd(d1,d2) shortcut to limit growth.
        let g = self.den.gcd(&rhs.den);
        let d1g = &self.den / &g;
        let d2g = &rhs.den / &g;
        let num = &self.num * &d2g + &rhs.num * &d1g;
        let den = &self.den * &d2g;
        Ratio::from_bigints(num, den)
    }
}

impl Sub for &Ratio {
    type Output = Ratio;
    fn sub(self, rhs: &Ratio) -> Ratio {
        let g = self.den.gcd(&rhs.den);
        let d1g = &self.den / &g;
        let d2g = &rhs.den / &g;
        let num = &self.num * &d2g - &rhs.num * &d1g;
        let den = &self.den * &d2g;
        Ratio::from_bigints(num, den)
    }
}

impl Mul for &Ratio {
    type Output = Ratio;
    fn mul(self, rhs: &Ratio) -> Ratio {
        if self.is_zero() || rhs.is_zero() {
            return Ratio::zero();
        }
        // Cross-reduce before multiplying to keep magnitudes small.
        let g1 = self.num.gcd(&rhs.den);
        let g2 = rhs.num.gcd(&self.den);
        let num = (&self.num / &g1) * (&rhs.num / &g2);
        let den = (&self.den / &g2) * (&rhs.den / &g1);
        // num/den is already reduced; fix the sign convention directly.
        if den.is_negative() {
            Ratio {
                num: -num,
                den: -den,
            }
        } else {
            Ratio { num, den }
        }
    }
}

impl Div for &Ratio {
    type Output = Ratio;
    #[inline]
    fn div(self, rhs: &Ratio) -> Ratio {
        assert!(!rhs.is_zero(), "division by zero Ratio");
        self * &rhs.recip()
    }
}

impl Neg for &Ratio {
    type Output = Ratio;
    #[inline]
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num.clone(),
            den: self.den.clone(),
        }
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    #[inline]
    fn neg(mut self) -> Ratio {
        self.num = -self.num;
        self
    }
}

macro_rules! forward_owned_binop_ratio {
    ($($op:ident :: $f:ident),*) => {$(
        impl $op for Ratio {
            type Output = Ratio;
            #[inline]
            fn $f(self, rhs: Ratio) -> Ratio { (&self).$f(&rhs) }
        }
        impl $op<&Ratio> for Ratio {
            type Output = Ratio;
            #[inline]
            fn $f(self, rhs: &Ratio) -> Ratio { (&self).$f(rhs) }
        }
        impl $op<Ratio> for &Ratio {
            type Output = Ratio;
            #[inline]
            fn $f(self, rhs: Ratio) -> Ratio { self.$f(&rhs) }
        }
    )*};
}
forward_owned_binop_ratio!(Add::add, Sub::sub, Mul::mul, Div::div);

impl AddAssign<&Ratio> for Ratio {
    #[inline]
    fn add_assign(&mut self, rhs: &Ratio) {
        *self = &*self + rhs;
    }
}

impl AddAssign for Ratio {
    #[inline]
    fn add_assign(&mut self, rhs: Ratio) {
        *self = &*self + &rhs;
    }
}

impl SubAssign<&Ratio> for Ratio {
    #[inline]
    fn sub_assign(&mut self, rhs: &Ratio) {
        *self = &*self - rhs;
    }
}

impl SubAssign for Ratio {
    #[inline]
    fn sub_assign(&mut self, rhs: Ratio) {
        *self = &*self - &rhs;
    }
}

impl MulAssign<&Ratio> for Ratio {
    #[inline]
    fn mul_assign(&mut self, rhs: &Ratio) {
        *self = &*self * rhs;
    }
}

impl MulAssign for Ratio {
    #[inline]
    fn mul_assign(&mut self, rhs: Ratio) {
        *self = &*self * &rhs;
    }
}

impl DivAssign<&Ratio> for Ratio {
    #[inline]
    fn div_assign(&mut self, rhs: &Ratio) {
        *self = &*self / rhs;
    }
}

impl DivAssign for Ratio {
    #[inline]
    fn div_assign(&mut self, rhs: Ratio) {
        *self = &*self / &rhs;
    }
}

impl std::iter::Sum for Ratio {
    fn sum<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::zero(), |a, b| a + b)
    }
}

impl<'a> std::iter::Sum<&'a Ratio> for Ratio {
    fn sum<I: Iterator<Item = &'a Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::zero(), |a, b| &a + b)
    }
}

// ---------------------------------------------------------------------------
// Ordering.
// ---------------------------------------------------------------------------

impl PartialOrd for Ratio {
    #[inline]
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        // Fast path on signs.
        match (self.sign(), other.sign()) {
            (a, b) if a != b => return a.cmp(&b),
            (Sign::Zero, Sign::Zero) => return Ordering::Equal,
            _ => {}
        }
        // Cross-multiply: n1*d2 <=> n2*d1 (denominators positive).
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

// ---------------------------------------------------------------------------
// Formatting and parsing.
// ---------------------------------------------------------------------------

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ratio({self})")
    }
}

/// Error returned when parsing a [`Ratio`] from a malformed string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseRatioError;

impl fmt::Display for ParseRatioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid rational literal (expected `n`, `n/d`, or a decimal)")
    }
}

impl std::error::Error for ParseRatioError {}

impl FromStr for Ratio {
    type Err = ParseRatioError;

    /// Accepts `"3"`, `"-3/4"`, and decimal notation `"1.25"`.
    fn from_str(s: &str) -> Result<Ratio, ParseRatioError> {
        if let Some((n, d)) = s.split_once('/') {
            let n: BigInt = n.trim().parse().map_err(|_| ParseRatioError)?;
            let d: BigInt = d.trim().parse().map_err(|_| ParseRatioError)?;
            if d.is_zero() {
                return Err(ParseRatioError);
            }
            return Ok(Ratio::from_bigints(n, d));
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            let neg = int_part.trim_start().starts_with('-');
            let i: BigInt = if int_part.is_empty() || int_part == "-" {
                BigInt::zero()
            } else {
                int_part.parse().map_err(|_| ParseRatioError)?
            };
            if frac_part.is_empty() || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseRatioError);
            }
            let f: BigInt = frac_part.parse().map_err(|_| ParseRatioError)?;
            let scale = BigInt::from(10).pow(frac_part.len() as u32);
            let frac = Ratio::from_bigints(f, scale);
            let int = Ratio::from(i);
            return Ok(if neg { int - frac } else { int + frac });
        }
        let n: BigInt = s.trim().parse().map_err(|_| ParseRatioError)?;
        Ok(Ratio::from(n))
    }
}

/// Convenience constructor: `rat(3, 4)` is `3/4`.
#[inline]
pub fn rat(n: i64, d: i64) -> Ratio {
    Ratio::new(n, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(-2, -4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(2, -4), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(0, 5), Ratio::zero());
        assert!(Ratio::new(0, -7).denom().is_one());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Ratio::new(1, 2) + Ratio::new(1, 3), Ratio::new(5, 6));
        assert_eq!(Ratio::new(1, 2) - Ratio::new(1, 3), Ratio::new(1, 6));
        assert_eq!(Ratio::new(2, 3) * Ratio::new(3, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(1, 2) / Ratio::new(1, 4), Ratio::new(2, 1));
        assert_eq!(-Ratio::new(1, 2), Ratio::new(-1, 2));
    }

    #[test]
    fn assign_ops() {
        let mut x = Ratio::new(1, 2);
        x += Ratio::new(1, 6);
        assert_eq!(x, Ratio::new(2, 3));
        x *= Ratio::new(3, 2);
        assert_eq!(x, Ratio::one());
        x -= Ratio::new(1, 4);
        assert_eq!(x, Ratio::new(3, 4));
        x /= Ratio::new(3, 1);
        assert_eq!(x, Ratio::new(1, 4));
    }

    #[test]
    fn ordering() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(-1, 2) < Ratio::new(-1, 3));
        assert!(Ratio::new(-1, 2) < Ratio::zero());
        assert!(Ratio::new(7, 3) > Ratio::new(2, 1));
        assert_eq!(Ratio::new(2, 6).cmp(&Ratio::new(1, 3)), Ordering::Equal);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Ratio::new(7, 2).floor(), BigInt::from(3));
        assert_eq!(Ratio::new(7, 2).ceil(), BigInt::from(4));
        assert_eq!(Ratio::new(-7, 2).floor(), BigInt::from(-4));
        assert_eq!(Ratio::new(-7, 2).ceil(), BigInt::from(-3));
        assert_eq!(Ratio::from(5i64).floor(), BigInt::from(5));
        assert_eq!(Ratio::from(5i64).ceil(), BigInt::from(5));
    }

    #[test]
    fn recip_pow() {
        assert_eq!(Ratio::new(3, 4).recip(), Ratio::new(4, 3));
        assert_eq!(Ratio::new(-3, 4).recip(), Ratio::new(-4, 3));
        assert_eq!(Ratio::new(2, 3).pow(3), Ratio::new(8, 27));
        assert_eq!(Ratio::new(2, 3).pow(-2), Ratio::new(9, 4));
        assert_eq!(Ratio::new(5, 7).pow(0), Ratio::one());
    }

    #[test]
    fn display_parse_roundtrip() {
        for s in ["0", "5", "-5", "1/3", "-7/11", "123456789123456789/2"] {
            let r: Ratio = s.parse().unwrap();
            assert_eq!(r.to_string(), s);
        }
        assert_eq!("1.25".parse::<Ratio>().unwrap(), Ratio::new(5, 4));
        assert_eq!("-0.5".parse::<Ratio>().unwrap(), Ratio::new(-1, 2));
        assert_eq!("2/4".parse::<Ratio>().unwrap().to_string(), "1/2");
        assert!("1/0".parse::<Ratio>().is_err());
        assert!("a/b".parse::<Ratio>().is_err());
        assert!("1.".parse::<Ratio>().is_err());
    }

    #[test]
    fn to_f64() {
        assert_eq!(Ratio::new(1, 2).to_f64(), 0.5);
        assert_eq!(Ratio::new(-3, 4).to_f64(), -0.75);
        let tiny = Ratio::from_bigints(BigInt::one(), BigInt::from(2).pow(1200));
        assert!(tiny.to_f64() >= 0.0);
        let big = Ratio::from_bigints(BigInt::from(2).pow(1200), BigInt::from(2).pow(1199));
        assert!((big.to_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn lcm_of_denominators() {
        let rs = [Ratio::new(1, 4), Ratio::new(5, 6), Ratio::new(3, 1)];
        assert_eq!(Ratio::lcm_of_denominators(rs.iter()), BigInt::from(12));
        let empty: [Ratio; 0] = [];
        assert_eq!(Ratio::lcm_of_denominators(empty.iter()), BigInt::one());
    }

    #[test]
    fn approximate_f64() {
        assert_eq!(Ratio::approximate_f64(0.5, 100), Ratio::new(1, 2));
        assert_eq!(Ratio::approximate_f64(-0.25, 100), Ratio::new(-1, 4));
        assert_eq!(Ratio::approximate_f64(3.0, 100), Ratio::from_int(3));
        let pi = Ratio::approximate_f64(std::f64::consts::PI, 200);
        // Best rational approximation to pi with denominator <= 200 is 355/113.
        assert_eq!(pi, Ratio::new(355, 113));
        let x = 0.123456789;
        let r = Ratio::approximate_f64(x, 1_000_000_000);
        assert!((r.to_f64() - x).abs() < 1e-9);
    }

    #[test]
    fn min_max_sum() {
        assert_eq!(Ratio::new(1, 2).min(Ratio::new(1, 3)), Ratio::new(1, 3));
        assert_eq!(Ratio::new(1, 2).max(Ratio::new(1, 3)), Ratio::new(1, 2));
        let s: Ratio = [Ratio::new(1, 2), Ratio::new(1, 3), Ratio::new(1, 6)]
            .into_iter()
            .sum();
        assert_eq!(s, Ratio::one());
        let s2: Ratio = [Ratio::new(1, 2), Ratio::new(1, 2)].iter().sum();
        assert_eq!(s2, Ratio::one());
    }
}
