//! Serde support: [`BigInt`] and [`Ratio`] serialize as decimal / `n/d`
//! strings, which keeps arbitrary precision intact across JSON round-trips.

use crate::{BigInt, Ratio};
use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

impl Serialize for BigInt {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de> Deserialize<'de> for BigInt {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<BigInt, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse()
            .map_err(|_| D::Error::custom("invalid BigInt string"))
    }
}

impl Serialize for Ratio {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de> Deserialize<'de> for Ratio {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Ratio, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse()
            .map_err(|_| D::Error::custom("invalid Ratio string"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigint_json_roundtrip() {
        let x: BigInt = "123456789123456789123456789".parse().unwrap();
        let json = serde_json::to_string(&x).unwrap();
        assert_eq!(json, "\"123456789123456789123456789\"");
        let back: BigInt = serde_json::from_str(&json).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn ratio_json_roundtrip() {
        let x = Ratio::new(-7, 12);
        let json = serde_json::to_string(&x).unwrap();
        assert_eq!(json, "\"-7/12\"");
        let back: Ratio = serde_json::from_str(&json).unwrap();
        assert_eq!(back, x);
    }
}
