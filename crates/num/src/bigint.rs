//! Arbitrary-precision signed integers.
//!
//! Representation: a [`Sign`] plus a little-endian vector of `u64` limbs with
//! no trailing zero limbs. Zero is `Sign::Zero` with an empty limb vector —
//! a canonical form, so `Eq`/`Hash` can be derived structurally.

#![allow(clippy::needless_range_loop)] // carry-chain loops are clearer indexed

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use core::str::FromStr;

/// Sign of a [`BigInt`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sign {
    /// Strictly negative.
    Minus,
    /// Zero.
    Zero,
    /// Strictly positive.
    Plus,
}

impl Sign {
    #[inline]
    fn negate(self) -> Sign {
        match self {
            Sign::Minus => Sign::Plus,
            Sign::Zero => Sign::Zero,
            Sign::Plus => Sign::Minus,
        }
    }

    #[inline]
    fn mul(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (Sign::Plus, Sign::Plus) | (Sign::Minus, Sign::Minus) => Sign::Plus,
            _ => Sign::Minus,
        }
    }
}

/// An arbitrary-precision signed integer.
///
/// ```
/// use ss_num::BigInt;
/// let a = BigInt::from(1_000_000_007u64);
/// let b = &a * &a;
/// assert_eq!(b.to_string(), "1000000014000000049");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    /// Little-endian limbs, no trailing zeros; empty iff sign == Zero.
    mag: Vec<u64>,
}

// ---------------------------------------------------------------------------
// Magnitude (unsigned slice) primitives.
// ---------------------------------------------------------------------------

fn trim(mag: &mut Vec<u64>) {
    while mag.last() == Some(&0) {
        mag.pop();
    }
}

fn cmp_mag(a: &[u64], b: &[u64]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            o => return o,
        }
    }
    Ordering::Equal
}

fn add_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for i in 0..long.len() {
        let s = short.get(i).copied().unwrap_or(0);
        let (x, c1) = long[i].overflowing_add(s);
        let (x, c2) = x.overflowing_add(carry);
        carry = (c1 as u64) + (c2 as u64);
        out.push(x);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// `a - b`, requires `a >= b`.
fn sub_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert!(cmp_mag(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let s = b.get(i).copied().unwrap_or(0);
        let (x, b1) = a[i].overflowing_sub(s);
        let (x, b2) = x.overflowing_sub(borrow);
        borrow = (b1 as u64) + (b2 as u64);
        out.push(x);
    }
    debug_assert_eq!(borrow, 0);
    trim(&mut out);
    out
}

fn mul_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let t = (ai as u128) * (bj as u128) + (out[i + j] as u128) + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = (out[k] as u128) + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    trim(&mut out);
    out
}

/// Divide magnitude by a single limb; returns (quotient, remainder).
fn div_rem_mag_limb(a: &[u64], d: u64) -> (Vec<u64>, u64) {
    debug_assert!(d != 0);
    let mut q = vec![0u64; a.len()];
    let mut rem = 0u128;
    for i in (0..a.len()).rev() {
        let cur = (rem << 64) | a[i] as u128;
        q[i] = (cur / d as u128) as u64;
        rem = cur % d as u128;
    }
    trim(&mut q);
    (q, rem as u64)
}

/// Shift a magnitude left by `s` bits (`0 <= s < 64`), appending a limb if
/// needed.
fn shl_bits(a: &[u64], s: u32) -> Vec<u64> {
    if s == 0 {
        return a.to_vec();
    }
    let mut out = Vec::with_capacity(a.len() + 1);
    let mut carry = 0u64;
    for &x in a {
        out.push((x << s) | carry);
        carry = x >> (64 - s);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// Shift a magnitude right by `s` bits (`0 <= s < 64`).
fn shr_bits(a: &[u64], s: u32) -> Vec<u64> {
    if s == 0 {
        return a.to_vec();
    }
    let mut out = vec![0u64; a.len()];
    let mut carry = 0u64;
    for i in (0..a.len()).rev() {
        out[i] = (a[i] >> s) | carry;
        carry = a[i] << (64 - s);
    }
    trim(&mut out);
    out
}

/// Knuth algorithm D: divide `u` by `v` (both magnitudes, `v.len() >= 2`,
/// `u >= v`). Returns (quotient, remainder).
fn div_rem_mag_knuth(u: &[u64], v: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let n = v.len();
    let m = u.len() - n;

    // D1: normalize so the top limb of v has its high bit set.
    let shift = v[n - 1].leading_zeros();
    let vn = shl_bits(v, shift);
    let mut un = shl_bits(u, shift);
    un.resize(u.len() + 1, 0); // extra high limb for the loop

    let mut q = vec![0u64; m + 1];
    let vtop = vn[n - 1];
    let vsec = vn[n - 2];

    for j in (0..=m).rev() {
        // D3: estimate qhat from the top two (three) limbs.
        let top = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
        let mut qhat = top / vtop as u128;
        let mut rhat = top % vtop as u128;
        while qhat >= 1u128 << 64 || qhat * vsec as u128 > ((rhat << 64) | un[j + n - 2] as u128) {
            qhat -= 1;
            rhat += vtop as u128;
            if rhat >= 1u128 << 64 {
                break;
            }
        }

        // D4: multiply and subtract un[j..j+n+1] -= qhat * vn.
        let mut borrow = 0i128;
        let mut carry = 0u128;
        for i in 0..n {
            let p = qhat * vn[i] as u128 + carry;
            carry = p >> 64;
            let t = un[j + i] as i128 - (p as u64) as i128 + borrow;
            un[j + i] = t as u64;
            borrow = t >> 64; // arithmetic shift: 0 or -1
        }
        let t = un[j + n] as i128 - carry as i128 + borrow;
        un[j + n] = t as u64;

        // D5/D6: if we subtracted too much, add back one v.
        if t < 0 {
            qhat -= 1;
            let mut carry = 0u64;
            for i in 0..n {
                let (x, c1) = un[j + i].overflowing_add(vn[i]);
                let (x, c2) = x.overflowing_add(carry);
                un[j + i] = x;
                carry = (c1 as u64) + (c2 as u64);
            }
            un[j + n] = un[j + n].wrapping_add(carry);
        }
        q[j] = qhat as u64;
    }

    trim(&mut q);
    // D8: denormalize remainder.
    let mut r = shr_bits(&un[..n], shift);
    trim(&mut r);
    (q, r)
}

/// Divide magnitudes; returns (quotient, remainder).
fn div_rem_mag(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
    assert!(!b.is_empty(), "division by zero BigInt");
    match cmp_mag(a, b) {
        Ordering::Less => (Vec::new(), a.to_vec()),
        Ordering::Equal => (vec![1], Vec::new()),
        Ordering::Greater => {
            if b.len() == 1 {
                let (q, r) = div_rem_mag_limb(a, b[0]);
                (q, if r == 0 { Vec::new() } else { vec![r] })
            } else {
                div_rem_mag_knuth(a, b)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// BigInt API.
// ---------------------------------------------------------------------------

impl BigInt {
    /// The integer zero.
    #[inline]
    pub fn zero() -> BigInt {
        BigInt {
            sign: Sign::Zero,
            mag: Vec::new(),
        }
    }

    /// The integer one.
    #[inline]
    pub fn one() -> BigInt {
        BigInt {
            sign: Sign::Plus,
            mag: vec![1],
        }
    }

    fn from_mag(sign: Sign, mut mag: Vec<u64>) -> BigInt {
        trim(&mut mag);
        if mag.is_empty() {
            BigInt::zero()
        } else {
            debug_assert!(sign != Sign::Zero);
            BigInt { sign, mag }
        }
    }

    /// Sign of this integer.
    #[inline]
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// `true` iff this is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// `true` iff this is one.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Plus && self.mag == [1]
    }

    /// `true` iff this is strictly negative.
    #[inline]
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// `true` iff this is strictly positive.
    #[inline]
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Plus
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        match self.sign {
            Sign::Minus => BigInt {
                sign: Sign::Plus,
                mag: self.mag.clone(),
            },
            _ => self.clone(),
        }
    }

    /// Number of bits in the magnitude (0 for zero).
    pub fn bits(&self) -> u64 {
        match self.mag.last() {
            None => 0,
            Some(&top) => (self.mag.len() as u64) * 64 - top.leading_zeros() as u64,
        }
    }

    /// Quotient and remainder of truncated division (C semantics: the
    /// remainder has the sign of the dividend).
    ///
    /// # Panics
    /// Panics if `other` is zero.
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "division by zero BigInt");
        if self.is_zero() {
            return (BigInt::zero(), BigInt::zero());
        }
        let (q, r) = div_rem_mag(&self.mag, &other.mag);
        let qs = self.sign.mul(other.sign);
        (BigInt::from_mag(qs, q), BigInt::from_mag(self.sign, r))
    }

    /// Greatest common divisor (always non-negative; `gcd(0,0) == 0`).
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.mag.clone();
        let mut b = other.mag.clone();
        while !b.is_empty() {
            let (_, r) = div_rem_mag(&a, &b);
            a = b;
            b = r;
        }
        BigInt::from_mag(Sign::Plus, a)
    }

    /// Least common multiple (non-negative; `lcm(x,0) == 0`).
    pub fn lcm(&self, other: &BigInt) -> BigInt {
        if self.is_zero() || other.is_zero() {
            return BigInt::zero();
        }
        let g = self.gcd(other);
        let (q, _) = self.abs().div_rem(&g);
        &q * &other.abs()
    }

    /// Raise to a non-negative integer power (binary exponentiation).
    pub fn pow(&self, mut exp: u32) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Convert to `f64` (may lose precision; saturates to ±∞ on overflow).
    pub fn to_f64(&self) -> f64 {
        let mut x = 0.0f64;
        for &limb in self.mag.iter().rev() {
            x = x * 18446744073709551616.0 + limb as f64;
        }
        if self.sign == Sign::Minus {
            -x
        } else {
            x
        }
    }

    /// Convert to `i64` if it fits.
    pub fn to_i64(&self) -> Option<i64> {
        match self.mag.len() {
            0 => Some(0),
            1 => {
                let m = self.mag[0];
                match self.sign {
                    Sign::Plus if m <= i64::MAX as u64 => Some(m as i64),
                    Sign::Minus if m <= 1u64 << 63 => Some(-(m as i128) as i64),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Convert to `u64` if it fits (must be non-negative).
    pub fn to_u64(&self) -> Option<u64> {
        match (self.sign, self.mag.len()) {
            (Sign::Zero, _) => Some(0),
            (Sign::Plus, 1) => Some(self.mag[0]),
            _ => None,
        }
    }

    /// Convert to `u128` if it fits (must be non-negative).
    pub fn to_u128(&self) -> Option<u128> {
        match (self.sign, self.mag.len()) {
            (Sign::Zero, _) => Some(0),
            (Sign::Plus, 1) => Some(self.mag[0] as u128),
            (Sign::Plus, 2) => Some((self.mag[1] as u128) << 64 | self.mag[0] as u128),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Conversions.
// ---------------------------------------------------------------------------

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            #[inline]
            fn from(v: $t) -> BigInt {
                if v == 0 {
                    BigInt::zero()
                } else {
                    BigInt { sign: Sign::Plus, mag: vec![v as u64] }
                }
            }
        }
    )*};
}
impl_from_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            #[inline]
            fn from(v: $t) -> BigInt {
                use core::cmp::Ordering;
                match v.cmp(&0) {
                    Ordering::Equal => BigInt::zero(),
                    Ordering::Greater => {
                        BigInt { sign: Sign::Plus, mag: vec![v as u64] }
                    }
                    Ordering::Less => BigInt {
                        sign: Sign::Minus,
                        mag: vec![(v as i128).unsigned_abs() as u64],
                    },
                }
            }
        }
    )*};
}
impl_from_signed!(i8, i16, i32, i64, isize);

impl From<u128> for BigInt {
    fn from(v: u128) -> BigInt {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        BigInt::from_mag(Sign::Plus, vec![lo, hi])
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> BigInt {
        if v < 0 {
            -BigInt::from(v.unsigned_abs())
        } else {
            BigInt::from(v as u128)
        }
    }
}

// ---------------------------------------------------------------------------
// Ordering.
// ---------------------------------------------------------------------------

impl PartialOrd for BigInt {
    #[inline]
    fn partial_cmp(&self, other: &BigInt) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &BigInt) -> Ordering {
        match self.sign.cmp(&other.sign) {
            Ordering::Equal => match self.sign {
                Sign::Zero => Ordering::Equal,
                Sign::Plus => cmp_mag(&self.mag, &other.mag),
                Sign::Minus => cmp_mag(&other.mag, &self.mag),
            },
            o => o,
        }
    }
}

// ---------------------------------------------------------------------------
// Arithmetic operators (implemented on references; owned forms delegate).
// ---------------------------------------------------------------------------

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            sign: self.sign.negate(),
            mag: self.mag.clone(),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = self.sign.negate();
        self
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_mag(a, add_mag(&self.mag, &rhs.mag)),
            _ => match cmp_mag(&self.mag, &rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::from_mag(self.sign, sub_mag(&self.mag, &rhs.mag)),
                Ordering::Less => BigInt::from_mag(rhs.sign, sub_mag(&rhs.mag, &self.mag)),
            },
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // subtraction = addition of the negation
    fn sub(self, rhs: &BigInt) -> BigInt {
        // Cheap: negate is a sign flip on a borrowed clone only when needed.
        match rhs.sign {
            Sign::Zero => self.clone(),
            _ => {
                self + &BigInt {
                    sign: rhs.sign.negate(),
                    mag: rhs.mag.clone(),
                }
            }
        }
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        let sign = self.sign.mul(rhs.sign);
        if sign == Sign::Zero {
            return BigInt::zero();
        }
        BigInt::from_mag(sign, mul_mag(&self.mag, &rhs.mag))
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    #[inline]
    fn div(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).0
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    #[inline]
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).1
    }
}

macro_rules! forward_owned_binop {
    ($($op:ident :: $f:ident),*) => {$(
        impl $op for BigInt {
            type Output = BigInt;
            #[inline]
            fn $f(self, rhs: BigInt) -> BigInt { (&self).$f(&rhs) }
        }
        impl $op<&BigInt> for BigInt {
            type Output = BigInt;
            #[inline]
            fn $f(self, rhs: &BigInt) -> BigInt { (&self).$f(rhs) }
        }
        impl $op<BigInt> for &BigInt {
            type Output = BigInt;
            #[inline]
            fn $f(self, rhs: BigInt) -> BigInt { self.$f(&rhs) }
        }
    )*};
}
forward_owned_binop!(Add::add, Sub::sub, Mul::mul, Div::div, Rem::rem);

impl AddAssign<&BigInt> for BigInt {
    #[inline]
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigInt> for BigInt {
    #[inline]
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&BigInt> for BigInt {
    #[inline]
    fn mul_assign(&mut self, rhs: &BigInt) {
        *self = &*self * rhs;
    }
}

// ---------------------------------------------------------------------------
// Formatting and parsing (decimal).
// ---------------------------------------------------------------------------

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Peel off 19 decimal digits at a time (10^19 < 2^64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut mag = self.mag.clone();
        let mut chunks = Vec::new();
        while !mag.is_empty() {
            let (q, r) = div_rem_mag_limb(&mag, CHUNK);
            chunks.push(r);
            mag = q;
        }
        let mut s = String::new();
        if self.sign == Sign::Minus {
            s.push('-');
        }
        s.push_str(&chunks.pop().unwrap().to_string());
        while let Some(c) = chunks.pop() {
            s.push_str(&format!("{c:019}"));
        }
        f.write_str(&s)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

/// Error returned when parsing a [`BigInt`] from a malformed string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseBigIntError;

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid decimal integer literal")
    }
}

impl std::error::Error for ParseBigIntError {}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<BigInt, ParseBigIntError> {
        let (neg, digits) = match s.as_bytes() {
            [b'-', rest @ ..] => (true, rest),
            [b'+', rest @ ..] => (false, rest),
            rest => (false, rest),
        };
        if digits.is_empty() || !digits.iter().all(|b| b.is_ascii_digit()) {
            return Err(ParseBigIntError);
        }
        let mut mag: Vec<u64> = Vec::new();
        // Consume 19 digits at a time: mag = mag * 10^k + chunk.
        for chunk in digits.chunks(19) {
            let k = chunk.len() as u32;
            let val: u64 = std::str::from_utf8(chunk)
                .map_err(|_| ParseBigIntError)?
                .parse()
                .map_err(|_| ParseBigIntError)?;
            let base = 10u64.pow(k);
            // mag = mag * base + val, in place.
            let mut carry = val as u128;
            for limb in mag.iter_mut() {
                let t = (*limb as u128) * (base as u128) + carry;
                *limb = t as u64;
                carry = t >> 64;
            }
            while carry != 0 {
                mag.push(carry as u64);
                carry >>= 64;
            }
        }
        trim(&mut mag);
        if mag.is_empty() {
            Ok(BigInt::zero())
        } else {
            Ok(BigInt {
                sign: if neg { Sign::Minus } else { Sign::Plus },
                mag,
            })
        }
    }
}

impl Default for BigInt {
    #[inline]
    fn default() -> BigInt {
        BigInt::zero()
    }
}

impl std::iter::Sum for BigInt {
    fn sum<I: Iterator<Item = BigInt>>(iter: I) -> BigInt {
        iter.fold(BigInt::zero(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(s: &str) -> BigInt {
        s.parse().unwrap()
    }

    #[test]
    fn zero_and_one() {
        assert!(BigInt::zero().is_zero());
        assert!(BigInt::one().is_one());
        assert_eq!(BigInt::zero().to_string(), "0");
        assert_eq!(BigInt::from(0i64), BigInt::zero());
    }

    #[test]
    fn from_primitives() {
        assert_eq!(BigInt::from(-5i32).to_string(), "-5");
        assert_eq!(BigInt::from(i64::MIN).to_string(), "-9223372036854775808");
        assert_eq!(BigInt::from(u64::MAX).to_string(), "18446744073709551615");
        assert_eq!(
            BigInt::from(u128::MAX).to_string(),
            "340282366920938463463374607431768211455"
        );
        assert_eq!(
            BigInt::from(i128::MIN).to_string(),
            "-170141183460469231731687303715884105728"
        );
    }

    #[test]
    fn parse_roundtrip() {
        for s in [
            "0",
            "1",
            "-1",
            "18446744073709551616",
            "340282366920938463463374607431768211456",
            "-99999999999999999999999999999999999999999999",
        ] {
            assert_eq!(bi(s).to_string(), s);
        }
        assert_eq!(bi("+42").to_string(), "42");
        assert_eq!(bi("-0").to_string(), "0");
        assert!("".parse::<BigInt>().is_err());
        assert!("12a".parse::<BigInt>().is_err());
        assert!("--3".parse::<BigInt>().is_err());
    }

    #[test]
    fn addition_with_carries() {
        let a = BigInt::from(u64::MAX);
        let b = &a + &BigInt::one();
        assert_eq!(b.to_string(), "18446744073709551616");
        assert_eq!((&b - &BigInt::one()), a);
    }

    #[test]
    fn signed_addition() {
        assert_eq!(BigInt::from(5) + BigInt::from(-3), BigInt::from(2));
        assert_eq!(BigInt::from(3) + BigInt::from(-5), BigInt::from(-2));
        assert_eq!(BigInt::from(-3) + BigInt::from(3), BigInt::zero());
        assert_eq!(BigInt::from(-3) - BigInt::from(4), BigInt::from(-7));
    }

    #[test]
    fn multiplication() {
        let a = bi("123456789123456789123456789");
        let b = bi("987654321987654321");
        assert_eq!(
            (&a * &b).to_string(),
            "121932631356500531469135800347203169112635269"
        );
        assert_eq!(&a * &BigInt::zero(), BigInt::zero());
        assert_eq!((&a * &BigInt::from(-1)).to_string(), format!("-{a}"));
    }

    #[test]
    fn division_single_limb() {
        let a = bi("123456789123456789");
        let (q, r) = a.div_rem(&BigInt::from(1000));
        assert_eq!(q.to_string(), "123456789123456");
        assert_eq!(r.to_string(), "789");
    }

    #[test]
    fn division_knuth_multi_limb() {
        let a = bi("340282366920938463463374607431768211456"); // 2^128
        let b = bi("18446744073709551617"); // 2^64 + 1
        let (q, r) = a.div_rem(&b);
        // 2^128 = (2^64+1)(2^64-1) + 1
        assert_eq!(q.to_string(), "18446744073709551615");
        assert_eq!(r, BigInt::one());
        assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn division_requiring_addback() {
        // Case engineered to exercise the Knuth D add-back branch:
        // u = [0, qhat_overestimate pattern]. Classic test values.
        let a = bi("170141183460469231722463931679029329919");
        let b = bi("18446744073709551615");
        let (q, r) = a.div_rem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r.abs() < b.abs());
    }

    #[test]
    fn truncated_division_signs() {
        let (q, r) = BigInt::from(-7).div_rem(&BigInt::from(2));
        assert_eq!((q, r), (BigInt::from(-3), BigInt::from(-1)));
        let (q, r) = BigInt::from(7).div_rem(&BigInt::from(-2));
        assert_eq!((q, r), (BigInt::from(-3), BigInt::from(1)));
        let (q, r) = BigInt::from(-7).div_rem(&BigInt::from(-2));
        assert_eq!((q, r), (BigInt::from(3), BigInt::from(-1)));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = BigInt::one().div_rem(&BigInt::zero());
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(BigInt::from(12).gcd(&BigInt::from(18)), BigInt::from(6));
        assert_eq!(BigInt::from(-12).gcd(&BigInt::from(18)), BigInt::from(6));
        assert_eq!(BigInt::zero().gcd(&BigInt::from(5)), BigInt::from(5));
        assert_eq!(BigInt::from(4).lcm(&BigInt::from(6)), BigInt::from(12));
        assert_eq!(BigInt::from(0).lcm(&BigInt::from(6)), BigInt::zero());
        let a = bi("123456789123456789");
        let b = bi("987654321987654321");
        let g = a.gcd(&b);
        assert_eq!((&a % &g), BigInt::zero());
        assert_eq!((&b % &g), BigInt::zero());
    }

    #[test]
    fn pow() {
        assert_eq!(BigInt::from(2).pow(0), BigInt::one());
        assert_eq!(BigInt::from(2).pow(64).to_string(), "18446744073709551616");
        assert_eq!(
            BigInt::from(10).pow(30).to_string(),
            format!("1{}", "0".repeat(30))
        );
        assert_eq!(BigInt::from(-3).pow(3), BigInt::from(-27));
    }

    #[test]
    fn ordering() {
        assert!(BigInt::from(-5) < BigInt::from(-3));
        assert!(BigInt::from(-3) < BigInt::zero());
        assert!(BigInt::zero() < BigInt::from(3));
        assert!(bi("18446744073709551616") > bi("18446744073709551615"));
        assert!(bi("-18446744073709551616") < bi("-18446744073709551615"));
    }

    #[test]
    fn to_f64() {
        assert_eq!(BigInt::from(42).to_f64(), 42.0);
        assert_eq!(BigInt::from(-42).to_f64(), -42.0);
        let big = BigInt::from(2).pow(100);
        assert_eq!(big.to_f64(), 2f64.powi(100));
    }

    #[test]
    fn to_fixed_width() {
        assert_eq!(BigInt::from(42).to_i64(), Some(42));
        assert_eq!(BigInt::from(-42).to_i64(), Some(-42));
        assert_eq!(BigInt::from(i64::MIN).to_i64(), Some(i64::MIN));
        assert_eq!(bi("9223372036854775808").to_i64(), None);
        assert_eq!(bi("-9223372036854775809").to_i64(), None);
        assert_eq!(BigInt::from(u64::MAX).to_u64(), Some(u64::MAX));
        assert_eq!(BigInt::from(-1).to_u64(), None);
        assert_eq!(BigInt::from(u128::MAX).to_u128(), Some(u128::MAX));
    }

    #[test]
    fn bits() {
        assert_eq!(BigInt::zero().bits(), 0);
        assert_eq!(BigInt::one().bits(), 1);
        assert_eq!(BigInt::from(255).bits(), 8);
        assert_eq!(BigInt::from(256).bits(), 9);
        assert_eq!(BigInt::from(2).pow(100).bits(), 101);
    }

    #[test]
    fn sum_iterator() {
        let total: BigInt = (1..=100i64).map(BigInt::from).sum();
        assert_eq!(total, BigInt::from(5050));
    }
}
