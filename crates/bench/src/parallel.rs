//! Scoped-thread parallel runner for embarrassingly parallel sweeps.
//!
//! The `ss-bench` sweeps iterate independent (platform, seed) points —
//! separate platforms, separate LPs, no shared state — so they scale
//! linearly with cores. [`par_map`] fans a work list over a
//! `std::thread::scope` pool (no dependencies, no global executor) and
//! returns results in input order. A panic in any worker (a failed
//! cross-check assertion, say) propagates to the caller when the scope
//! joins, so sweep guards still fail the run loudly.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `items` on up to `available_parallelism` scoped threads,
/// preserving input order. Falls back to a plain sequential map for empty
/// or single-item inputs (and when the machine reports one core).
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Each slot is locked exactly once by exactly one worker; the atomic
    // cursor hands out indices.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i].lock().unwrap().take().expect("slot taken twice");
                let r = f(item);
                *out[i].lock().unwrap() = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker skipped a slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all_items() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(items, |i| i * 3);
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map(Vec::<usize>::new(), |i| i), Vec::<usize>::new());
        assert_eq!(par_map(vec![41], |i| i + 1), vec![42]);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let _ = par_map(vec![1, 2, 3], |i| {
            assert!(i < 3, "sweep guard fired");
            i
        });
    }
}
