//! Regenerate the paper's figures and experiments.
//!
//! ```sh
//! cargo run --release -p ss-bench --bin repro -- list
//! cargo run --release -p ss-bench --bin repro -- fig1 fig3
//! cargo run --release -p ss-bench --bin repro -- all
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = ss_bench::registry();

    if args.is_empty()
        || args
            .iter()
            .any(|a| a == "list" || a == "--help" || a == "-h")
    {
        println!("usage: repro <experiment-id>... | all | list\n\navailable experiments:");
        for (id, _) in &registry {
            println!("  {id}");
        }
        return;
    }

    let run_all = args.iter().any(|a| a == "all");
    let mut ran = 0;
    for (id, f) in &registry {
        if run_all || args.iter().any(|a| a == id) {
            f();
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("no matching experiment; try `repro list`");
        std::process::exit(2);
    }
}
