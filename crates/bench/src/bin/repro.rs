//! Regenerate the paper's figures and experiments.
//!
//! ```sh
//! cargo run --release -p ss-bench --bin repro -- list
//! cargo run --release -p ss-bench --bin repro -- fig1 fig3
//! cargo run --release -p ss-bench --bin repro -- all
//! cargo run --release -p ss-bench --bin repro -- --kernel=dense lp-scale
//! cargo run --release -p ss-bench --bin repro -- --pricing=dantzig lp-warm
//! ```
//!
//! `--kernel=auto|dense|sparse` pins the LP pivoting engine for every
//! solve in the run (default `auto`: the sparse revised simplex for both
//! scalar backends; `dense` pins the cross-check tableau).
//!
//! `--pricing=auto|bland|dantzig|devex` pins the entering rule for every
//! solve (default `auto`: Bland on exact scalars for the termination
//! guarantee, devex reference pricing on `f64`).
//!
//! `--factor=auto|eta|lu` pins the basis-factorization backend of the
//! sparse kernel for every solve (default `auto`: sparse LU with
//! Markowitz ordering and Forrest–Tomlin updates; `eta` pins the
//! product-form eta file kept as the agreement oracle).

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let registry = ss_bench::registry();

    args.retain(|a| match a.strip_prefix("--kernel=") {
        Some(k) => {
            let choice = match k {
                "auto" => ss_lp::KernelChoice::Auto,
                "dense" => ss_lp::KernelChoice::Dense,
                "sparse" => ss_lp::KernelChoice::Sparse,
                other => {
                    eprintln!("unknown kernel `{other}`; use auto|dense|sparse");
                    std::process::exit(2);
                }
            };
            ss_lp::set_default_kernel(choice);
            false
        }
        None => true,
    });

    args.retain(|a| match a.strip_prefix("--pricing=") {
        Some(p) => {
            let pricing = match p {
                "auto" => ss_lp::Pricing::Auto,
                "bland" => ss_lp::Pricing::Bland,
                "dantzig" => ss_lp::Pricing::Dantzig,
                "devex" => ss_lp::Pricing::Devex,
                other => {
                    eprintln!("unknown pricing rule `{other}`; use auto|bland|dantzig|devex");
                    std::process::exit(2);
                }
            };
            ss_lp::set_default_pricing(pricing);
            false
        }
        None => true,
    });

    args.retain(|a| match a.strip_prefix("--factor=") {
        Some(f) => {
            let factor = match f {
                "auto" => ss_lp::FactorChoice::Auto,
                "eta" => ss_lp::FactorChoice::Eta,
                "lu" => ss_lp::FactorChoice::Lu,
                other => {
                    eprintln!("unknown factorization `{other}`; use auto|eta|lu");
                    std::process::exit(2);
                }
            };
            ss_lp::set_default_factor(factor);
            false
        }
        None => true,
    });

    if args.is_empty()
        || args
            .iter()
            .any(|a| a == "list" || a == "--help" || a == "-h")
    {
        println!(
            "usage: repro [--kernel=auto|dense|sparse] [--pricing=auto|bland|dantzig|devex] \
             [--factor=auto|eta|lu] <experiment-id>... | all | list\n\n\
             available experiments:"
        );
        for (id, _) in &registry {
            println!("  {id}");
        }
        return;
    }

    let run_all = args.iter().any(|a| a == "all");
    let mut ran = 0;
    for (id, f) in &registry {
        if run_all || args.iter().any(|a| a == id) {
            f();
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("no matching experiment; try `repro list`");
        std::process::exit(2);
    }
}
