//! Figures 1–3: the paper's worked examples, recomputed.

use crate::table::{banner, print_table};
use ss_core::master_slave::PortModel;
use ss_core::multicast::{self, EdgeCoupling};
use ss_core::{master_slave, scatter};
use ss_num::Ratio;
use ss_platform::paper;
use ss_schedule::{reconstruct_collective, reconstruct_master_slave};
use ss_sim::{simulate_collective, simulate_master_slave};

/// Figure 1 + §3.1: SSMS on the example platform, end to end.
pub fn fig1() {
    banner("fig1", "Figure 1 platform — SSMS steady-state master-slave");
    let (g, master) = paper::fig1();
    let sol = master_slave::solve(&g, master).expect("SSMS solves");
    sol.check(&g, &PortModel::FullOverlapOnePort)
        .expect("LP invariants");
    println!("platform: p = {}, |E| = {}", g.num_nodes(), g.num_edges());
    println!(
        "ntask(G) = {} tasks/time-unit (~{:.4})",
        sol.ntask,
        sol.ntask.to_f64()
    );

    let rows: Vec<Vec<String>> = g
        .nodes()
        .map(|n| {
            vec![
                n.name.to_string(),
                n.w.to_string(),
                sol.alpha[n.id.index()].to_string(),
                sol.compute_rate(&g, n.id).to_string(),
            ]
        })
        .collect();
    print_table(&["node", "w_i", "alpha_i", "alpha_i/w_i"], &rows);

    let sched = reconstruct_master_slave(&g, &sol);
    sched.check(&g).expect("valid schedule");
    println!(
        "reconstruction: T = {}, tasks/period = {}, comm rounds = {} (bound |E|+2|V| = {})",
        sched.period,
        sched.work_per_period(),
        sched.decomposition.num_rounds(),
        g.num_edges() + 2 * g.num_nodes()
    );
    let run = simulate_master_slave(&g, master, &sched, 25);
    println!(
        "simulation: steady after {} period(s); steady rate == LP bound: {}",
        run.steady_after.expect("steady"),
        run.per_period.last().unwrap() == &run.plan_per_period
    );
}

/// Figure 2 + §3.3: the multicast platform and its max-LP bound.
pub fn fig2() {
    banner("fig2", "Figure 2 multicast platform — max-coupled LP bound");
    let (g, src, targets) = paper::fig2_multicast();
    let hi = multicast::solve(&g, src, &targets, EdgeCoupling::Max).expect("LP solves");
    println!(
        "source {}, targets {:?}",
        g.node(src).name,
        targets
            .iter()
            .map(|&t| g.node(t).name.to_string())
            .collect::<Vec<_>>()
    );
    println!(
        "max-LP multicast throughput bound TP = {} (paper: 1)",
        hi.throughput
    );
    assert_eq!(hi.throughput, Ratio::one());
    for (k, &t) in targets.iter().enumerate() {
        println!(
            "flows targeting {} (paper Fig. 3{}):",
            g.node(t).name,
            ['a', 'b'][k]
        );
        let rows: Vec<Vec<String>> = g
            .edges()
            .filter(|e| !hi.flows[k][e.id.index()].is_zero())
            .map(|e| {
                vec![
                    format!("{} -> {}", g.node(e.src).name, g.node(e.dst).name),
                    hi.flows[k][e.id.index()].to_string(),
                ]
            })
            .collect();
        print_table(&["edge", "messages/unit"], &rows);
    }
}

/// Figure 3(c–d) + §4.3: the reconstruction conflict and the achievable
/// sum-LP alternative.
pub fn fig3() {
    banner(
        "fig3",
        "Figure 3 — why the max-LP multicast bound is unachievable",
    );
    let (g, src, targets) = paper::fig2_multicast();
    let (lo, hi) = multicast::bounds(&g, src, &targets).expect("LPs solve");

    println!("aggregate transfers per edge under the max-LP solution (Fig. 3c):");
    let rows: Vec<Vec<String>> = g
        .edges()
        .filter(|e| !hi.total_edge_rate(e.id).is_zero())
        .map(|e| {
            let total = hi.total_edge_rate(e.id);
            let busy_unshared = &total * e.c;
            let busy_billed = &hi.edge_time[e.id.index()];
            vec![
                format!("{} -> {}", g.node(e.src).name, g.node(e.dst).name),
                total.to_string(),
                busy_billed.to_string(),
                busy_unshared.to_string(),
            ]
        })
        .collect();
    print_table(
        &["edge", "msgs/unit", "billed (max)", "if unshared (sum)"],
        &rows,
    );

    // The paper's Fig. 3(d) label argument. Sharing on an edge is only
    // possible when the two flows carry the SAME multicast instances: on
    // P0's edges that works (instance t crosses once and serves both
    // targets). But the source ports are saturated: P0->P1 and P0->P2 each
    // carry only HALF the instances of each stream, so the instances of
    // P5-messages routed via P2-P3-P4 (label b) and the instances of
    // P6-messages routed via P1-P3-P4 (label a) are necessarily DISJOINT
    // sets. On the slow edge (P3, P4) nothing can be merged:
    let p3 = g.find_node("P3").unwrap();
    let p4 = g.find_node("P4").unwrap();
    let slow = g.edge_between(p3, p4).unwrap();
    let c34 = g.edge(slow).c;
    let f5 = &hi.flows[0][slow.index()];
    let f6 = &hi.flows[1][slow.index()];
    let real = &(f5 + f6) * c34;
    println!(
        "conflict (Fig. 3d): P3->P4 carries label-b messages for P5 (rate {f5}) and label-a\n\
         messages for P6 (rate {f6}) — provably different multicast instances, so no sharing:\n\
         the edge needs ({f5} + {f6}) x {c34} = {real} time units per time unit (> 1).\n\
         The max-LP bound TP = {} cannot be scheduled.",
        hi.throughput
    );
    assert!(real > Ratio::one());
    // Source-port saturation that forces the disjointness:
    let p0 = g.find_node("P0").unwrap();
    let out_time: Ratio = g
        .out_edges(p0)
        .map(|e| hi.edge_time[e.id.index()].clone())
        .sum();
    println!("(P0's out-port busy time under the bound: {out_time} — fully saturated, no slack to re-route)");

    println!(
        "\nachievable sum-LP multicast: TP = {} — reconstructed and simulated:",
        lo.throughput
    );
    let sched = reconstruct_collective(&g, &lo).expect("sum-coupled reconstructs");
    sched.check(&g).expect("valid");
    let run = simulate_collective(&g, src, &targets, &lo.flows, &sched, 20);
    println!(
        "  T = {}, rounds = {}, steady after {} period(s), plan met = {}",
        sched.period,
        sched.decomposition.num_rounds(),
        run.steady_after.expect("steady"),
        run.per_period.last().unwrap() == &run.plan_per_period
    );
    // Achievable heuristic (ref [7] territory): fractional tree packing.
    let pack = ss_core::multicast_trees::solve_tree_packing(&g, src, &targets)
        .expect("tree packing solves");
    pack.check(&g, src, &targets).expect("valid packing");
    let psched = ss_schedule::reconstruct_tree_packing(&g, &pack);
    psched.check(&g).expect("valid schedule");
    let prun = ss_sim::simulate_tree_packing(&g, src, &targets, &pack, &psched, 20);
    println!(
        "\ntree-packing heuristic: rate {} across {} trees — reconstructed (T = {}), simulated (plan met = {})",
        pack.rate,
        pack.trees.len(),
        psched.period,
        prun.per_period.last().unwrap() == &prun.plan_per_period
    );
    println!(
        "shape check: sum-LP {} < tree packing {} (achieved!) < max-LP {} (unachievable); the true\n\
         optimum lies in [{}, {}] and pinning it down is NP-hard (§4.3).",
        lo.throughput, pack.rate, hi.throughput, pack.rate, hi.throughput
    );
    assert!(pack.rate > lo.throughput && pack.rate < hi.throughput);

    // Contrast: the pure-scatter reading of the same flows.
    let sc = scatter::solve(&g, src, &targets).expect("scatter solves");
    println!(
        "(scatter on the same platform: TP = {} — identical to the sum-LP)",
        sc.throughput
    );
}
