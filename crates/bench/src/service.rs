//! Evented-service experiments: the `service-scale` sweep, the
//! `service-smoke` socket guard, and the [`service_check`] slice of the
//! `bench-check` regression gate.
//!
//! The service's perf claims are operational, not algorithmic: batched
//! queue draining + enqueue-time update coalescing + cached-lowering
//! reuse should push sustained re-plans/sec well past a one-blocking-
//! request-at-a-time baseline, and warm snapshot persistence should let
//! a restarted service re-plan every tenant with **zero cold solves**.
//! [`service_scale`] measures both and records them (tenant-count sweep
//! with p50/p99 latency, restart recovery) to `BENCH_service.json`,
//! asserting in-sweep that the batched configuration beats the unbatched
//! baseline at the largest tenant count and that the restart is
//! all-warm. [`service_smoke`] is the CI guard for the socket path: real
//! TCP clients against a real reactor, answers cross-checked against
//! private reference sessions, certificates verified.

use crate::table::{banner, print_table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ss_core::master_slave::MasterSlave;
use ss_core::session::SolveSession;
use ss_num::Ratio;
use ss_platform::{topo, NodeId, Platform};
use ss_service::{Service, ServiceConfig, SocketClient};
use ss_sim::dynamic::ParamScale;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

/// Where the sweep records its points (and where [`service_check`] reads
/// the committed reference back from).
const BENCH_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");

/// Node count of every tenant platform in the sweep: big enough that a
/// re-plan costs real simplex work, small enough that a 48-tenant sweep
/// stays in CI budget.
const TENANT_P: usize = 20;

/// Mild per-round drift, the §5.5 NWS regime (same shape as the
/// warm-scale sweep's).
fn service_drift(rng: &mut StdRng, g: &Platform) -> ParamScale {
    let mut s = ParamScale::nominal(g);
    for w in s.w_mult.iter_mut() {
        if rng.gen_bool(0.3) {
            *w = Ratio::new(rng.gen_range(8..=18), 12);
        }
    }
    for c in s.c_mult.iter_mut() {
        if rng.gen_bool(0.3) {
            *c = Ratio::new(rng.gen_range(8..=18), 12);
        }
    }
    s
}

fn tenant_fleet(n: usize) -> Vec<(String, Platform, NodeId)> {
    (0..n)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(0x5e41 + i as u64);
            let (g, m) =
                topo::random_connected(&mut rng, TENANT_P, 0.3, &topo::ParamRange::default());
            (format!("tenant-{i}"), g, m)
        })
        .collect()
}

/// The batched configuration under test: coalescing, batch draining and
/// cached-lowering reuse all on.
fn batched_config(workers: usize) -> ServiceConfig {
    ServiceConfig::builder()
        .workers(workers)
        .batch(64)
        .coalesce(true)
        .reuse_lowering(true)
        .build()
        .expect("static config is valid")
}

/// The baseline the tentpole is measured against: one request per queue
/// wakeup, no coalescing, fresh CSC lowering every solve — the shape of
/// the old blocking-`recv` service loop.
fn unbatched_config(workers: usize) -> ServiceConfig {
    ServiceConfig::builder()
        .workers(workers)
        .batch(1)
        .coalesce(false)
        .reuse_lowering(false)
        .build()
        .expect("static config is valid")
}

struct LoadStats {
    requests: usize,
    lp_solves: usize,
    coalesced: usize,
    replans_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    warm_fraction: f64,
}

/// Drive a service with one producer thread per tenant: `rounds` rounds,
/// each a burst of `burst` async drift updates (observations arriving
/// faster than solves — what coalescing exists for), all answered before
/// the next round. Per-request latency is send→answer.
fn run_load(
    cfg: ServiceConfig,
    fleet: &[(String, Platform, NodeId)],
    rounds: usize,
    burst: usize,
) -> LoadStats {
    let service = Service::spawn(cfg);
    let client = service.client();
    for (id, g, m) in fleet {
        client
            .register(id.clone(), g.clone(), *m)
            .expect("register");
    }

    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for (ti, (id, g, _)) in fleet.iter().enumerate() {
            let c = client.clone();
            let latencies = &latencies;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xd21f + ti as u64);
                let mut local = Vec::with_capacity(rounds * burst);
                for _ in 0..rounds {
                    let mut pending = Vec::with_capacity(burst);
                    for _ in 0..burst {
                        let drift = service_drift(&mut rng, g);
                        let sent = Instant::now();
                        let p = c.update_async(id.clone(), drift).expect("enqueue update");
                        pending.push((sent, p));
                    }
                    for (sent, p) in pending {
                        let re = p.wait().expect("re-plan");
                        assert!(re.throughput > 0.0, "{id}: degenerate re-plan");
                        local.push(sent.elapsed().as_secs_f64() * 1e3);
                    }
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();

    let mut lp_solves = 0;
    let mut coalesced = 0;
    let mut warm_sum = 0.0;
    for (id, _, _) in fleet {
        let rate = client.rate(id.clone()).expect("rate");
        assert_eq!(rate.solves, 1 + rounds * burst, "{id}: lost replies");
        lp_solves += rate.lp_solves;
        coalesced += rate.coalesced;
        warm_sum += rate.warm_fraction;
    }
    service.shutdown();

    let mut lat = latencies.into_inner().unwrap();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let requests = fleet.len() * rounds * burst;
    assert_eq!(lat.len(), requests);
    LoadStats {
        requests,
        lp_solves,
        coalesced,
        replans_per_sec: requests as f64 / elapsed.max(1e-9),
        p50_ms: lat[lat.len() / 2],
        p99_ms: lat[(lat.len() * 99) / 100],
        warm_fraction: warm_sum / fleet.len() as f64,
    }
}

struct ScalePoint {
    tenants: usize,
    batched: LoadStats,
    unbatched: LoadStats,
}

struct RestartPoint {
    tenants: usize,
    cold_register_ms: f64,
    warm_recover_ms: f64,
    cold_solves_after_restart: usize,
}

/// Restart recovery: journal a fleet, kill the service, restart from the
/// snapshot directory, re-plan every tenant once. Every post-restart
/// re-plan must ride a warm basis (zero cold solves) — that is the
/// persistence tentpole's acceptance claim, asserted here. The cold
/// reference is registering the same fleet from scratch.
fn restart_recovery(n: usize) -> RestartPoint {
    let fleet = tenant_fleet(n);
    let dir = std::env::temp_dir().join(format!("ss-bench-service-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Cold reference: a fresh fleet registration is n hint-less solves.
    let t0 = Instant::now();
    {
        let service = Service::spawn(batched_config(4));
        let client = service.client();
        for (id, g, m) in &fleet {
            client
                .register(id.clone(), g.clone(), *m)
                .expect("register");
        }
        service.shutdown();
    }
    let cold_register_ms = t0.elapsed().as_secs_f64() * 1e3;

    // First life: register, drift twice, die. Graceful shutdown journals
    // every tenant's warm snapshot.
    {
        let cfg = ServiceConfig {
            persist_dir: Some(dir.clone()),
            ..batched_config(4)
        };
        let service = Service::spawn(cfg);
        let client = service.client();
        let mut rng = StdRng::seed_from_u64(0x0eaf);
        for (id, g, m) in &fleet {
            client
                .register(id.clone(), g.clone(), *m)
                .expect("register");
        }
        for _ in 0..2 {
            for (id, g, _) in &fleet {
                client
                    .update(id.clone(), service_drift(&mut rng, g))
                    .expect("pre-restart drift");
            }
        }
        service.shutdown();
    }

    // Second life: reload the snapshots and re-plan everyone once.
    let mut cold_solves_after_restart = 0;
    let t0 = Instant::now();
    let warm_recover_ms;
    {
        let cfg = ServiceConfig {
            persist_dir: Some(dir.clone()),
            ..batched_config(4)
        };
        let service = Service::spawn(cfg);
        let client = service.client();
        let mut rng = StdRng::seed_from_u64(0x0eaf + 1);
        for (id, g, _) in &fleet {
            let re = client
                .update(id.clone(), service_drift(&mut rng, g))
                .expect("post-restart re-plan");
            if !re.outcome.used_warm_basis() {
                cold_solves_after_restart += 1;
            }
        }
        warm_recover_ms = t0.elapsed().as_secs_f64() * 1e3;
        service.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(
        cold_solves_after_restart, 0,
        "restart-from-snapshot performed cold solves — persistence lost the warm bases"
    );
    RestartPoint {
        tenants: n,
        cold_register_ms,
        warm_recover_ms,
        cold_solves_after_restart,
    }
}

/// `service-scale`: sustained re-plan throughput and latency of the
/// evented service vs the unbatched baseline across tenant counts, plus
/// cold-vs-warm restart recovery, recorded to `BENCH_service.json`. The
/// in-sweep asserts are the tentpole's acceptance criteria: at the
/// largest tenant count the batched configuration must sustain more
/// re-plans/sec than the unbatched baseline, and a restart from
/// snapshots must re-plan every tenant warm (zero cold solves).
pub fn service_scale() {
    banner(
        "service-scale",
        "evented service — batched/coalesced re-plans vs unbatched baseline, restart recovery",
    );
    let mut points = Vec::new();
    for tenants in [4usize, 16, 48] {
        let fleet = tenant_fleet(tenants);
        let rounds = 6;
        let burst = 4;
        let batched = run_load(batched_config(4), &fleet, rounds, burst);
        let unbatched = run_load(unbatched_config(4), &fleet, rounds, burst);
        points.push(ScalePoint {
            tenants,
            batched,
            unbatched,
        });
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .flat_map(|pt| {
            [("batched", &pt.batched), ("unbatched", &pt.unbatched)]
                .into_iter()
                .map(|(tag, st)| {
                    vec![
                        pt.tenants.to_string(),
                        tag.into(),
                        st.requests.to_string(),
                        st.lp_solves.to_string(),
                        st.coalesced.to_string(),
                        format!("{:.0}", st.replans_per_sec),
                        format!("{:.2}", st.p50_ms),
                        format!("{:.2}", st.p99_ms),
                        format!("{:.0}%", 100.0 * st.warm_fraction),
                    ]
                })
                .collect::<Vec<_>>()
        })
        .collect();
    print_table(
        &[
            "tenants",
            "config",
            "requests",
            "lp solves",
            "coalesced",
            "replans/s",
            "p50 ms",
            "p99 ms",
            "warm",
        ],
        &rows,
    );

    // The tentpole's throughput claim, asserted where it matters most:
    // under the heaviest multi-tenant load.
    let last = points.last().expect("sweep is non-empty");
    assert!(
        last.batched.replans_per_sec > last.unbatched.replans_per_sec,
        "batched service is no faster than the unbatched baseline at {} tenants \
         ({:.0}/s vs {:.0}/s)",
        last.tenants,
        last.batched.replans_per_sec,
        last.unbatched.replans_per_sec
    );
    // Coalescing must actually fire under burst load: strictly fewer LP
    // solves than requests answered.
    assert!(
        last.batched.lp_solves < last.batched.requests,
        "no update was coalesced at {} tenants ({} solves for {} requests)",
        last.tenants,
        last.batched.lp_solves,
        last.batched.requests
    );

    let restart = restart_recovery(12);
    println!(
        "\nrestart recovery ({} tenants): cold fleet registration {:.1} ms, \
         warm re-plan-all after restart {:.1} ms, {} cold solves (zero asserted)",
        restart.tenants,
        restart.cold_register_ms,
        restart.warm_recover_ms,
        restart.cold_solves_after_restart
    );

    match write_service_json(&points, &restart) {
        Ok(path) => println!("\nrecorded service sweep to {path}"),
        Err(e) => eprintln!("could not write BENCH_service.json: {e}"),
    }
}

fn write_service_json(points: &[ScalePoint], restart: &RestartPoint) -> std::io::Result<String> {
    fn stats_json(st: &LoadStats) -> String {
        format!(
            "{{\"requests\": {}, \"lp_solves\": {}, \"coalesced\": {}, \
             \"replans_per_sec\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"warm_fraction\": {:.3}}}",
            st.requests,
            st.lp_solves,
            st.coalesced,
            st.replans_per_sec,
            st.p50_ms,
            st.p99_ms,
            st.warm_fraction
        )
    }
    let mut s = String::from("{\n  \"service_scale\": [\n");
    for (i, pt) in points.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"tenants\": {}, \"batched\": {}, \"unbatched\": {}}}",
            pt.tenants,
            stats_json(&pt.batched),
            stats_json(&pt.unbatched)
        );
        s.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        s,
        "  ],\n  \"restart\": {{\"tenants\": {}, \"cold_register_ms\": {:.1}, \
         \"warm_recover_ms\": {:.1}, \"cold_solves_after_restart\": {}}}\n}}\n",
        restart.tenants,
        restart.cold_register_ms,
        restart.warm_recover_ms,
        restart.cold_solves_after_restart
    );
    std::fs::write(BENCH_PATH, s)?;
    Ok("BENCH_service.json".into())
}

/// `service-smoke`: the CI guard for the socket path. A served reactor
/// on an ephemeral port, several concurrent TCP clients each driving its
/// own tenant through drift rounds; every wire answer is cross-checked
/// against a private reference session solving the same instances, and
/// the exact certificate is verified at the end. An in-process client
/// hits the same service concurrently, so both frontends share one
/// tenant map.
pub fn service_smoke() {
    banner(
        "service-smoke",
        "socket-protocol guard — TCP clients vs reference sessions, certificates verified",
    );
    let service = Service::spawn(ServiceConfig::builder().workers(2).build().unwrap());
    let handle = service.listen("127.0.0.1:0").expect("bind reactor");
    let addr = handle.addr();

    let rows: Mutex<Vec<Vec<String>>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for i in 0..3usize {
            let rows = &rows;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x50c7 + i as u64);
                let (g, m) =
                    topo::random_connected(&mut rng, 10 + 2 * i, 0.3, &topo::ParamRange::default());
                let id = format!("wire-{i}");
                let mut sock = SocketClient::connect(addr).expect("connect");
                let mut reference: SolveSession<f64, MasterSlave> =
                    SolveSession::new(MasterSlave::new(m));

                let plan = sock.register(&id, &g, m).expect("register over wire");
                let want = reference.resolve(&g).expect("reference solve");
                let err = (plan.throughput - want.activities.objective_f64()).abs();
                assert!(
                    err <= crate::scale::BACKEND_TOLERANCE,
                    "{id}: wire register off the reference by {err:.3e}"
                );

                let mut drift_rng = StdRng::seed_from_u64(0xd00d + i as u64);
                for round in 0..3 {
                    let scale = service_drift(&mut drift_rng, &g);
                    let gp = scale.apply(&g);
                    let re = sock.update(&id, scale).expect("update over wire");
                    let want = reference.resolve(&gp).expect("reference re-solve");
                    let err = (re.throughput - want.activities.objective_f64()).abs();
                    assert!(
                        err <= crate::scale::BACKEND_TOLERANCE,
                        "{id} round {round}: wire re-plan off the reference by {err:.3e}"
                    );
                    assert!(re.outcome.used_warm_basis() || round == 0 || !re.stale);
                }

                let rate = sock.rate(&id).expect("rate over wire");
                assert_eq!(rate.solves, 4, "{id}: lost wire replies");
                let cert = sock.certify(&id).expect("certify over wire");
                assert!(
                    cert.f64_gap < 1e-6,
                    "{id}: certificate gap {:.3e}",
                    cert.f64_gap
                );
                rows.lock().unwrap().push(vec![
                    id,
                    rate.solves.to_string(),
                    format!("{:.0}%", 100.0 * rate.warm_fraction),
                    format!("{:.4}", rate.throughput),
                    format!("{:.1e}", cert.f64_gap),
                ]);
            });
        }

        // The in-process frontend shares the tenant map with the wire.
        let client = service.client();
        s.spawn(move || {
            let mut rng = StdRng::seed_from_u64(0x1417);
            let (g, m) = topo::random_connected(&mut rng, 8, 0.3, &topo::ParamRange::default());
            client.register("local", g.clone(), m).expect("register");
            let mut drift_rng = StdRng::seed_from_u64(0x1418);
            for _ in 0..3 {
                client
                    .update("local", service_drift(&mut drift_rng, &g))
                    .expect("local re-plan");
            }
        });
    });

    // Cross-frontend visibility: a socket client sees the tenant the
    // in-process client registered.
    let mut sock = SocketClient::connect(addr).expect("connect");
    assert_eq!(sock.rate("local").expect("cross-frontend rate").solves, 4);

    let mut rows = rows.into_inner().unwrap();
    rows.sort();
    print_table(&["tenant", "answers", "warm", "rate", "cert gap"], &rows);
    handle.stop();
    service.shutdown();
    println!("socket clients agree with reference sessions end to end (asserted; failures panic).");
}

/// The `bench-check` slice for `BENCH_service.json`: replays the largest
/// recorded tenant count and fails if the fresh batched-over-unbatched
/// throughput advantage collapses below half the committed one (a ratio
/// of ratios, so machine speed cancels), or if a restart-from-snapshot
/// ever performs a cold solve (deterministic, no headroom needed).
pub fn service_check() {
    let committed = std::fs::read_to_string(BENCH_PATH)
        .unwrap_or_else(|e| panic!("cannot read committed BENCH_service.json: {e}"));
    let doc = serde_json::parse(&committed)
        .unwrap_or_else(|e| panic!("committed BENCH_service.json is not valid JSON: {e}"));
    let points = crate::warm::json_field(&doc, "service_scale")
        .and_then(crate::warm::json_array)
        .expect("BENCH_service.json: missing `service_scale` array");
    let last = points.last().expect("service_scale records no points");
    let tenants = crate::warm::json_field(last, "tenants")
        .and_then(crate::warm::json_f64)
        .expect("point without `tenants`") as usize;
    let rps = |tag: &str| {
        crate::warm::json_field(last, tag)
            .and_then(|side| crate::warm::json_field(side, "replans_per_sec"))
            .and_then(crate::warm::json_f64)
            .unwrap_or_else(|| panic!("point without `{tag}.replans_per_sec`"))
    };
    let committed_speedup = rps("batched") / rps("unbatched").max(1e-9);

    let fleet = tenant_fleet(tenants);
    let batched = run_load(batched_config(4), &fleet, 4, 4);
    let unbatched = run_load(unbatched_config(4), &fleet, 4, 4);
    let fresh_speedup = batched.replans_per_sec / unbatched.replans_per_sec.max(1e-9);
    // 2x headroom on the speedup ratio, with an absolute floor of 1.0:
    // whatever the committed advantage was, the batched path must at
    // minimum still beat the baseline.
    let limit = (committed_speedup / 2.0).max(1.0);
    print_table(
        &[
            "tenants",
            "committed speedup",
            "fresh speedup",
            "floor",
            "verdict",
        ],
        &[vec![
            tenants.to_string(),
            format!("{committed_speedup:.2}x"),
            format!("{fresh_speedup:.2}x"),
            format!("{limit:.2}x"),
            if fresh_speedup >= limit {
                "ok".into()
            } else {
                "REGRESSED".into()
            },
        ]],
    );
    assert!(
        fresh_speedup >= limit,
        "batched-service speedup regressed: fresh {fresh_speedup:.2}x vs committed \
         {committed_speedup:.2}x (floor {limit:.2}x)"
    );

    // Deterministic half of the gate: restarts must stay all-warm (the
    // helper asserts zero cold solves internally).
    let restart = restart_recovery(8);
    println!(
        "service gate: restart re-planned {} tenants warm ({} cold, zero required).",
        restart.tenants, restart.cold_solves_after_restart
    );
}
