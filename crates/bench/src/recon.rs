//! §4.1 reconstruction compactness and §4.2 asymptotic optimality.

use crate::table::{banner, print_table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ss_core::master_slave;
use ss_num::{BigInt, Ratio};
use ss_platform::topo;
use ss_schedule::{flowpaths, reconstruct_master_slave};
use ss_sim::simulate_master_slave;

/// §4.1: across random platforms, the schedule description stays compact
/// (#matchings ≤ |E| + 2|V|), valid, and meets the LP bound in execution.
pub fn ssms_recon() {
    banner(
        "ssms-recon",
        "§4.1 — compact periodic reconstruction on random platforms",
    );
    let mut rows = Vec::new();
    for (i, p) in [4usize, 6, 8, 10, 12, 16].iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(42 + i as u64);
        let (g, m) = topo::random_connected(&mut rng, *p, 0.3, &topo::ParamRange::default());
        let sol = master_slave::solve(&g, m).expect("SSMS solves");
        let sched = reconstruct_master_slave(&g, &sol);
        sched.check(&g).expect("valid schedule");
        let run = simulate_master_slave(&g, m, &sched, 3 * *p);
        let meets = run.per_period.last().unwrap() == &run.plan_per_period;
        rows.push(vec![
            p.to_string(),
            g.num_edges().to_string(),
            sol.ntask.to_string(),
            sched.period.to_string(),
            sched.decomposition.num_rounds().to_string(),
            (g.num_edges() + 2 * g.num_nodes()).to_string(),
            run.steady_after
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            meets.to_string(),
        ]);
    }
    print_table(
        &[
            "p", "|E|", "ntask", "T", "rounds", "bound", "warmup", "sim==LP",
        ],
        &rows,
    );
    println!("shape: rounds always within the bound; simulated steady rate always equals the LP optimum.");
}

/// §4.2: tasks completed in K time units vs the bound K·ntask — the gap
/// is a platform constant, so the ratio tends to 1.
pub fn asymptotic() {
    banner(
        "asymptotic",
        "§4.2 — completions within K vs the K·ntask bound (Fig. 1 platform)",
    );
    let (g, m) = ss_platform::paper::fig1();
    let sol = master_slave::solve(&g, m).expect("solves");
    let sched = reconstruct_master_slave(&g, &sol);
    let warmup = flowpaths::master_slave_warmup(&g, m, &sol).expect("paths decompose");
    let constant = Ratio::from(&BigInt::from(warmup as u64 + 1) * &sched.work_per_period());
    println!(
        "T = {}, tasks/period = {}, warm-up bound = {} period(s), predicted gap constant = {}",
        sched.period,
        sched.work_per_period(),
        warmup,
        constant
    );
    let horizon = 400usize;
    let run = simulate_master_slave(&g, m, &sched, horizon);
    let mut rows = Vec::new();
    for periods in [5usize, 10, 25, 50, 100, 200, 400] {
        let k = Ratio::from(&sched.period * &BigInt::from(periods as u64));
        let done = run.completed_within(&k);
        let bound = &k * &sol.ntask;
        let gap = &bound - &Ratio::from(done.clone());
        let ratio = &Ratio::from(done.clone()) / &bound;
        rows.push(vec![
            k.to_string(),
            done.to_string(),
            bound.to_string(),
            gap.to_string(),
            format!("{:.5}", ratio.to_f64()),
        ]);
    }
    print_table(&["K", "done(K)", "K*ntask", "gap", "ratio"], &rows);
    println!(
        "shape: gap constant (= {constant} here), ratio -> 1 as K grows — the strong §4.2 result."
    );
}
