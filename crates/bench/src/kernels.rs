//! Dense-tableau vs sparse-revised-simplex kernel comparisons.
//!
//! Two consumers:
//!
//! * [`formulation_pairings`] times every steady-state formulation's `f64`
//!   solve on both kernels (identical instances) — the per-formulation
//!   half of `BENCH_lp_sparse.json`, written by the `lp-scale` sweep.
//! * [`kernel_smoke`] is the CI guard: small platforms, all four
//!   backend × kernel combinations, hard agreement asserts. A kernel
//!   regression fails the workflow here instead of surfacing as a bench
//!   curiosity.
//! * [`bounded_smoke`] is the bounded-variable guard: box-heavy
//!   formulations solved with native `0 ≤ x ≤ u` handling vs the
//!   lowered-rows oracle, identical exact optima and verifying
//!   certificates required on both kernels.

use crate::table::{banner, print_table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ss_core::divisible::Divisible;
use ss_core::engine::Formulation;
use ss_core::master_slave::MasterSlave;
use ss_core::multicast::EdgeCoupling;
use ss_core::multicast_trees::TreePackingForm;
use ss_core::{all_to_all, broadcast, dag, engine, master_slave, multicast, reduce, scatter};
use ss_lp::{BoundMode, KernelChoice, SimplexOptions};
use ss_num::Ratio;
use ss_platform::{paper, topo};
use std::time::Instant;

/// One formulation's dense-vs-sparse timing on an identical instance.
pub struct KernelPairing {
    /// Formulation name.
    pub name: &'static str,
    /// Median wall-clock per `f64` solve on the dense tableau (ms).
    pub dense_ms: f64,
    /// Median wall-clock per `f64` solve on the sparse revised simplex (ms).
    pub sparse_ms: f64,
}

impl KernelPairing {
    /// `dense / sparse` (>1 means the sparse kernel wins).
    pub fn speedup(&self) -> f64 {
        self.dense_ms / self.sparse_ms
    }
}

/// Median wall-clock of `runs` invocations, in milliseconds.
fn median_ms(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Time one closure under each kernel via the process-default switch (the
/// same mechanism `repro --kernel=...` uses), restoring the caller's
/// default after — a user-pinned `--kernel=...` must keep holding for the
/// experiments that run after this pairing.
fn pair(name: &'static str, mut solve: impl FnMut()) -> KernelPairing {
    const RUNS: usize = 5;
    let prior = ss_lp::default_kernel();
    ss_lp::set_default_kernel(KernelChoice::Dense);
    let dense_ms = median_ms(RUNS, &mut solve);
    ss_lp::set_default_kernel(KernelChoice::Sparse);
    let sparse_ms = median_ms(RUNS, &mut solve);
    ss_lp::set_default_kernel(prior);
    KernelPairing {
        name,
        dense_ms,
        sparse_ms,
    }
}

/// Dense-vs-sparse `f64` timings for every formulation on its reference
/// platform (the same instances the `formulations` Criterion bench uses).
pub fn formulation_pairings() -> Vec<KernelPairing> {
    let mut rng = StdRng::seed_from_u64(41);
    let (g, root) = topo::random_connected(&mut rng, 8, 0.3, &topo::ParamRange::default());
    let targets = topo::pick_targets(&mut rng, &g, root, 3);
    let (fig2, src2, targets2) = paper::fig2_multicast();
    let mut tg = dag::TaskGraph::diamond();
    tg.pin_task(dag::TaskId(0), root);

    let mut rng6 = StdRng::seed_from_u64(42);
    let (g6, _) = topo::random_connected(&mut rng6, 6, 0.3, &topo::ParamRange::default());

    vec![
        pair("ssms", || {
            master_slave::solve_approx(&g, root).unwrap();
        }),
        pair("scatter", || {
            scatter::solve_approx(&g, root, &targets).unwrap();
        }),
        pair("multicast-sum", || {
            multicast::solve_approx(&fig2, src2, &targets2, EdgeCoupling::Sum).unwrap();
        }),
        pair("multicast-max", || {
            multicast::solve_approx(&fig2, src2, &targets2, EdgeCoupling::Max).unwrap();
        }),
        pair("broadcast", || {
            broadcast::solve_approx(&g, root).unwrap();
        }),
        pair("reduce", || {
            reduce::solve_approx(&g, root).unwrap();
        }),
        pair("all-to-all", || {
            all_to_all::solve_approx(&g6).unwrap();
        }),
        pair("dag", || {
            dag::solve_approx(&g, &tg).unwrap();
        }),
        pair("divisible", || {
            engine::solve_approx(&Divisible::new(root), &g).unwrap();
        }),
        pair("multicast-trees", || {
            engine::solve_approx(&TreePackingForm::new(src2, &targets2), &fig2).unwrap();
        }),
    ]
}

/// Print a pairing table (used by the `lp-scale` experiment).
pub fn print_pairings(pairs: &[KernelPairing]) {
    let rows: Vec<Vec<String>> = pairs
        .iter()
        .map(|p| {
            vec![
                p.name.to_string(),
                format!("{:.3}", p.dense_ms),
                format!("{:.3}", p.sparse_ms),
                format!("{:.2}x", p.speedup()),
            ]
        })
        .collect();
    print_table(&["formulation", "dense ms", "sparse ms", "speedup"], &rows);
}

/// CI smoke: both kernels × both backends on small platforms, with hard
/// agreement asserts (`repro -- kernel-smoke`; wired into the workflow).
pub fn kernel_smoke() {
    banner(
        "kernel-smoke",
        "kernel regression guard — dense vs sparse on both backends, small p",
    );
    let mut rows = Vec::new();
    for p in [4usize, 8, 12] {
        let mut rng = StdRng::seed_from_u64(7000 + p as u64);
        let (g, m) = topo::random_connected(&mut rng, p, 0.3, &topo::ParamRange::default());
        let f = MasterSlave::new(m);

        // f64: dense vs sparse within tolerance.
        let (dense, sparse) = engine::kernel_cross_check(&f, &g, crate::scale::BACKEND_TOLERANCE)
            .expect("f64 kernels agree");

        // Exact: identical rationals, certificate from the engine.
        let exact = engine::solve(&f, &g).expect("exact dense solve");
        let sparse_exact = engine::solve_backend_kernel::<Ratio, _>(&f, &g, KernelChoice::Sparse)
            .expect("exact sparse solve");
        assert_eq!(
            &exact.ntask,
            sparse_exact.objective(),
            "p={p}: sparse-exact disagrees with the certified optimum"
        );
        let err = (exact.ntask.to_f64() - sparse.objective_f64()).abs();
        assert!(
            err <= crate::scale::BACKEND_TOLERANCE,
            "p={p}: f64 sparse drifts from exact by {err:.3e}"
        );

        // The ported divisible formulation rides the same guard.
        engine::kernel_cross_check(&Divisible::new(m), &g, crate::scale::BACKEND_TOLERANCE)
            .expect("divisible kernels agree");

        rows.push(vec![
            p.to_string(),
            format!("{:.6}", dense.objective_f64()),
            format!("{:.6}", sparse.objective_f64()),
            exact.ntask.to_string(),
            format!("{:.1e}", err),
        ]);
    }
    print_table(&["p", "dense f64", "sparse f64", "exact", "|Δ|"], &rows);
    println!("all kernel/backends agree (asserted; a disagreement panics and fails CI).");
}

/// CI smoke for the bounded-variable simplex: box-heavy formulations
/// (SSMS is all `0 ≤ x ≤ 1` activity variables) solved with native bound
/// metadata vs the lowered-rows oracle, on both kernels and both scalar
/// backends, with certificates verified on every exact solve
/// (`repro -- bounded-smoke`; wired into the workflow).
pub fn bounded_smoke() {
    banner(
        "bounded-smoke",
        "bounded-variable guard — native 0 ≤ x ≤ u vs lowered bound rows, both kernels",
    );
    let solve_mode = |lp: &ss_lp::Problem, kernel: KernelChoice, mode: BoundMode| {
        let opts = SimplexOptions {
            kernel,
            bound_mode: mode,
            ..SimplexOptions::default()
        };
        let s = lp.solve_with::<Ratio>(&opts).expect("exact solve");
        lp.verify_optimality(&s)
            .unwrap_or_else(|e| panic!("{kernel:?}/{mode:?} certificate failed: {e}"));
        s
    };

    let mut rows = Vec::new();
    let (fig1, m1) = paper::fig1();
    let mut platforms = vec![("fig1".to_string(), fig1, m1)];
    for p in [6usize, 10, 14] {
        let mut rng = StdRng::seed_from_u64(9000 + p as u64);
        let (g, m) = topo::random_connected(&mut rng, p, 0.3, &topo::ParamRange::default());
        platforms.push((format!("rand-{p}"), g, m));
    }
    for (name, g, m) in &platforms {
        let f = MasterSlave::new(*m);
        let (lp, _) = f.build(g).expect("SSMS build");
        let native_rows = ss_lp::lower::<Ratio>(&lp).m;
        let lowered_rows = ss_lp::lower_with::<Ratio>(&lp, BoundMode::LoweredRows).m;
        assert!(native_rows < lowered_rows, "{name}: nothing to fold?");

        let reference = solve_mode(&lp, KernelChoice::Sparse, BoundMode::Native);
        for (kernel, mode) in [
            (KernelChoice::Sparse, BoundMode::LoweredRows),
            (KernelChoice::Dense, BoundMode::Native),
            (KernelChoice::Dense, BoundMode::LoweredRows),
        ] {
            let s = solve_mode(&lp, kernel, mode);
            assert_eq!(
                s.objective(),
                reference.objective(),
                "{name}: {kernel:?}/{mode:?} disagrees with the bounded sparse optimum"
            );
        }
        // f64 rides the same native path the sweeps use.
        let fast = lp.solve_f64().expect("f64 solve");
        let err = (fast.objective() - reference.objective().to_f64()).abs();
        assert!(
            err <= crate::scale::BACKEND_TOLERANCE,
            "{name}: f64 bounded drifts from exact by {err:.3e}"
        );

        rows.push(vec![
            name.clone(),
            format!("{native_rows}/{lowered_rows}"),
            reference.objective().to_string(),
            reference.iterations().to_string(),
            format!("{:.1e}", err),
        ]);
    }
    print_table(
        &["platform", "rows n/l", "exact ntask", "pivots", "f64 |Δ|"],
        &rows,
    );
    println!("native and lowered bound handling agree on both kernels (asserted).");
}
