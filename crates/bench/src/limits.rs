//! §5 limitation experiments: communication models, start-up costs,
//! fixed periods, dynamic adaptation.

use crate::table::{banner, print_table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ss_core::{master_slave, model_variants};
use ss_num::{BigInt, Ratio};
use ss_platform::{paper, topo};
use ss_schedule::coloring::{greedy_shared_port_schedule, shared_port_load_bound};
use ss_schedule::{fixed_period as fp, reconstruct_master_slave, startup as su};
use ss_sim::dynamic::{mean_throughput, simulate_policies, ParamScale};

/// §5.1.1: send-OR-receive — LP degradation, and the greedy general-graph
/// orchestration vs its load lower bound (bipartite coloring no longer
/// applies; the problem is NP-hard).
pub fn sendrecv() {
    banner(
        "sendrecv",
        "§5.1.1 — send-OR-receive: LP loss and greedy orchestration quality",
    );
    let mut rows = Vec::new();
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(300 + seed);
        let (g, m) = topo::random_connected(&mut rng, 7, 0.3, &topo::ParamRange::default());
        let full = master_slave::solve(&g, m).expect("one-port LP");
        let half = model_variants::solve_send_or_receive(&g, m).expect("half-duplex LP");
        // Orchestrate the half-duplex activity with the greedy scheduler.
        let sched = reconstruct_master_slave(&g, &half);
        let (makespan, _) = greedy_shared_port_schedule(&g, &sched.edge_busy);
        let bound = shared_port_load_bound(&g, &sched.edge_busy);
        let quality = if bound.is_zero() {
            "1.000".to_string()
        } else {
            format!(
                "{:.3}",
                (&Ratio::from(makespan.clone()) / &Ratio::from(bound.clone())).to_f64()
            )
        };
        rows.push(vec![
            seed.to_string(),
            full.ntask.to_string(),
            half.ntask.to_string(),
            format!("{:.3}", (&half.ntask / &full.ntask).to_f64()),
            makespan.to_string(),
            bound.to_string(),
            quality,
        ]);
        assert!(half.ntask <= full.ntask);
    }
    print_table(
        &[
            "seed",
            "1-port ntask",
            "send-or-recv",
            "ratio",
            "greedy span",
            "load bound",
            "span/bound",
        ],
        &rows,
    );
    println!(
        "shape: the LP itself is an easy edit (ratio < 1 shows the model cost); the loss moved to\n\
         reconstruction — greedy edge coloring of a general graph, within 2x of the load bound (§5.1.1)."
    );
}

/// §5.1.2: dedicated NICs — throughput vs card count.
pub fn multiport() {
    banner(
        "multiport",
        "§5.1.2 — bounded multiport with dedicated NICs",
    );
    let mut rng = StdRng::seed_from_u64(77);
    let (g, m) = topo::star(&mut rng, 7, &topo::ParamRange::default());
    let compute_bound = g.total_compute_rate();
    let mut rows = Vec::new();
    for k in 1..=4u32 {
        let sol = model_variants::solve_multiport(&g, m, k).expect("multiport LP");
        rows.push(vec![
            k.to_string(),
            sol.ntask.to_string(),
            compute_bound.to_string(),
            format!("{:.3}", (&sol.ntask / &compute_bound).to_f64()),
        ]);
    }
    print_table(&["k cards", "ntask", "compute bound", "fraction"], &rows);
    println!("shape: ntask grows with k until the platform turns compute-bound, then saturates.");
}

/// §5.2: start-up costs — grouping m periods amortizes latencies; the
/// paper's m = ceil(sqrt(n/ntask)) drives T(n)/T_opt to 1.
pub fn startup() {
    banner(
        "startup",
        "§5.2 — start-up costs and sqrt(n) period grouping (Fig. 1 platform)",
    );
    let (g, m) = paper::fig1();
    let sol = master_slave::solve(&g, m).expect("solves");
    let sched = reconstruct_master_slave(&g, &sol);
    let startups = vec![Ratio::from_int(2); g.num_edges()];
    println!(
        "T = {}, ntask = {}, per-super-period overhead = {}",
        sched.period,
        sol.ntask,
        su::round_overhead(&sched, &startups)
    );

    println!("\n(a) effective throughput vs grouping factor m:");
    let mut rows = Vec::new();
    for mfac in [1i64, 2, 4, 16, 64, 256, 1024] {
        let grp = su::group(&sched, &startups, BigInt::from(mfac));
        rows.push(vec![
            mfac.to_string(),
            grp.effective_throughput.to_string(),
            format!("{:.4}", grp.effective_throughput.to_f64()),
            format!("{:.4}", (&grp.effective_throughput / &sol.ntask).to_f64()),
        ]);
    }
    print_table(&["m", "effective ntask", "~float", "fraction of LP"], &rows);

    println!("\n(b) total-time bound with m = ceil(sqrt(n/ntask)):");
    let mut rows = Vec::new();
    for n in [1_000u64, 100_000, 10_000_000, 1_000_000_000] {
        let mm = su::optimal_m(n, &sol.ntask);
        let t = su::total_time_bound(&g, &sched, &startups, m, n);
        let lb = su::lower_bound(n, &sol.ntask);
        rows.push(vec![
            n.to_string(),
            mm.to_string(),
            format!("{:.4}", (&t / &lb).to_f64()),
        ]);
    }
    print_table(&["n", "m", "T(n)/T_opt"], &rows);
    println!("shape: fraction -> 1 in (a) as m grows; ratio -> 1 in (b) at rate O(1/sqrt(n)) — §5.2's recipe.");
}

/// §5.4: fixed-length periods — per-path floor rounding; loss <= #paths/T.
pub fn fixed_period() {
    banner(
        "fixed-period",
        "§5.4 — fixed-length periods (Fig. 1 platform)",
    );
    let (g, m) = paper::fig1();
    let sol = master_slave::solve(&g, m).expect("solves");
    let natural = reconstruct_master_slave(&g, &sol).period.clone();
    println!(
        "LP optimum ntask = {}, natural period T = {}",
        sol.ntask, natural
    );
    let mut rows = Vec::new();
    for t in [2i64, 5, 10, 30, 60, 300, 3000] {
        let plan = fp::master_slave_fixed_period(&g, m, &sol, BigInt::from(t)).expect("plan");
        plan.check(&g).expect("feasible");
        rows.push(vec![
            t.to_string(),
            plan.achieved.to_string(),
            format!("{:.4}", plan.achieved.to_f64()),
            format!("{:.4}", plan.relative_loss().to_f64()),
        ]);
    }
    print_table(&["T_fix", "achieved", "~float", "relative loss"], &rows);
    println!("shape: loss shrinks as O(1/T_fix) and hits 0 whenever T_fix is a multiple of the natural period.");
}

/// §5.5: dynamic platforms — static vs lagged-adaptive vs omniscient.
pub fn dynamic() {
    banner(
        "dynamic",
        "§5.5 — adaptive re-solving under parameter drift (Fig. 1 platform)",
    );
    let (g, m) = paper::fig1();
    let p2 = g.find_node("P2").unwrap();
    let e13 = g
        .edge_between(g.find_node("P1").unwrap(), g.find_node("P3").unwrap())
        .unwrap();
    let nominal = ParamScale::nominal(&g);
    let phases = vec![
        nominal.clone(),
        nominal.clone(),
        ParamScale::nominal(&g).with_node(p2, Ratio::from_int(4)),
        ParamScale::nominal(&g).with_node(p2, Ratio::from_int(4)),
        ParamScale::nominal(&g)
            .with_node(p2, Ratio::from_int(4))
            .with_edge(e13, Ratio::from_int(3)),
        ParamScale::nominal(&g)
            .with_node(p2, Ratio::from_int(4))
            .with_edge(e13, Ratio::from_int(3)),
        nominal.clone(),
        nominal.clone(),
    ];
    let reports = simulate_policies(&g, m, &phases).expect("simulates");
    let rows: Vec<Vec<String>> = reports
        .iter()
        .enumerate()
        .map(|(t, r)| {
            vec![
                t.to_string(),
                format!("{:.4}", r.static_thr.to_f64()),
                format!("{:.4}", r.adaptive_thr.to_f64()),
                format!("{:.4}", r.omniscient_thr.to_f64()),
            ]
        })
        .collect();
    print_table(&["phase", "static", "adaptive", "omniscient"], &rows);
    let s = mean_throughput(&reports, |r| &r.static_thr);
    let a = mean_throughput(&reports, |r| &r.adaptive_thr);
    let o = mean_throughput(&reports, |r| &r.omniscient_thr);
    println!(
        "means: static {:.4} <= adaptive {:.4} <= omniscient {:.4}",
        s.to_f64(),
        a.to_f64(),
        o.to_f64()
    );
    println!("shape: adaptive trails omniscient by exactly one phase after each change and recovers; static never does.");
}
