//! Minimal aligned-table printing for experiment output.

/// Print an aligned table with a header row and a separator.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        println!("| {} |", line.join(" | "));
    };
    fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
    for row in rows {
        fmt_row(row);
    }
}

/// Section banner.
pub fn banner(id: &str, title: &str) {
    println!("\n=== [{id}] {title}");
}
