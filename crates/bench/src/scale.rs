//! Polynomial-cost claims: LP solve scaling (§3) and edge-coloring
//! scaling (§4.1). Rough wall-clock numbers here; precise statistics in
//! the Criterion benches. The LP sweep builds each instance once and
//! times **solves only**, so the kernel and bound-mode pairings compare
//! pivoting work, not shared construction cost.
//!
//! Both sweeps run on the **f64 backend** so they reach platform sizes
//! where exact rationals are needlessly expensive, and cross-check the f64
//! objective against the exact, duality-certified backend on every
//! platform small enough to afford it. The LP sweep additionally pairs the
//! two pivoting kernels — dense tableau vs sparse revised simplex — on
//! identical instances (recorded with the per-formulation pairings from
//! [`crate::kernels`] to `BENCH_lp_sparse.json`), and pairs the two
//! **bound modes** — native `0 ≤ x ≤ u` metadata vs lowered bound rows —
//! on the sparse kernel (recorded to `BENCH_lp_bounded.json`; the native
//! standard form must stay ≥ 5x smaller from p = 96 up, asserted). Sweep
//! points are independent platforms, so they run on the scoped-thread
//! pool of [`crate::parallel::par_map`].

use crate::parallel::par_map;
use crate::table::{banner, print_table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ss_core::engine::{self, Formulation};
use ss_core::master_slave::MasterSlave;
use ss_lp::{BoundMode, KernelChoice, SimplexOptions};
use ss_num::BigInt;
use ss_platform::topo;
use ss_platform::NodeId;
use ss_schedule::coloring::decompose;
use std::fmt::Write as _;
use std::time::Instant;

/// Platforms up to this node count also run the exact backend for the
/// cross-check; larger ones trust the (already-anchored) fast path.
const CROSS_CHECK_MAX_NODES: usize = 24;

/// Platforms up to this node count also run the dense f64 kernel for the
/// dense-vs-sparse pairing; beyond it the tableau is the bottleneck the
/// sparse kernel exists to remove, so only the sparse kernel continues.
const DENSE_KERNEL_MAX_NODES: usize = 48;

/// From this node count up, the native standard form must be at least
/// this many times smaller (rows) than the lowered-bound-rows form —
/// the bounded-variable simplex's reason to exist, asserted in CI.
const BOUNDED_ROW_FACTOR_MIN_NODES: usize = 96;
const BOUNDED_ROW_FACTOR: usize = 5;

/// Platforms up to this node count also run the lowered-bound-rows oracle
/// solve; beyond it the lowered form's 6x-plus row count makes the oracle
/// the sweep bottleneck (its basis is the thing native bounds exist to
/// avoid), so the large-p points pair it no further.
const LOWERED_ORACLE_MAX_NODES: usize = 192;

/// Objective agreement tolerance between backends and between kernels
/// (absolute; the steady-state objectives are O(1)-scaled).
pub const BACKEND_TOLERANCE: f64 = 1e-6;

struct SweepPoint {
    p: usize,
    edges: usize,
    vars: usize,
    rows: usize,
    /// Standard-form rows with native bounds / with lowered bound rows.
    native_rows: usize,
    lowered_rows: usize,
    sparse_ms: f64,
    sparse_pivots: usize,
    /// Sparse kernel re-run with bounds lowered to rows (PR 2's shape);
    /// paired up to [`LOWERED_ORACLE_MAX_NODES`].
    lowered_ms: Option<f64>,
    dense_ms: Option<f64>,
    exact_ms: Option<f64>,
    abs_error: Option<f64>,
}

fn sweep_point(p: usize) -> SweepPoint {
    let mut rng = StdRng::seed_from_u64(p as u64);
    let (g, m) = topo::random_connected(&mut rng, p, 0.25, &topo::ParamRange::default());
    let f = MasterSlave::new(m);
    let (lp, _vars) = f.build(&g).expect("SSMS build");

    let native_rows = ss_lp::lower::<f64>(&lp).m;
    let lowered_rows = ss_lp::lower_with::<f64>(&lp, BoundMode::LoweredRows).m;
    if p >= BOUNDED_ROW_FACTOR_MIN_NODES {
        assert!(
            lowered_rows >= BOUNDED_ROW_FACTOR * native_rows,
            "p={p}: native form only shrinks {lowered_rows} rows to {native_rows}"
        );
    }

    let t0 = Instant::now();
    let sparse =
        engine::solve_problem_kernel::<f64>(&lp, KernelChoice::Sparse).expect("sparse f64 solve");
    let sparse_ms = t0.elapsed().as_secs_f64() * 1e3;

    // The same sparse kernel on the lowered-rows oracle — PR 2's baseline
    // shape, kept as the bounded path's speedup reference up to
    // `LOWERED_ORACLE_MAX_NODES`.
    let lowered_ms = (p <= LOWERED_ORACLE_MAX_NODES).then(|| {
        let lowered_opts = SimplexOptions {
            kernel: KernelChoice::Sparse,
            bound_mode: BoundMode::LoweredRows,
            ..SimplexOptions::default()
        };
        let t0 = Instant::now();
        let lowered = lp
            .solve_with::<f64>(&lowered_opts)
            .expect("lowered-rows sparse f64 solve");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let bound_err = (lowered.objective() - sparse.objective_f64()).abs();
        assert!(
            bound_err <= BACKEND_TOLERANCE * (1.0 + lowered.objective().abs()),
            "p={p}: bound-mode disagreement |Δ| = {bound_err:.3e}"
        );
        ms
    });

    let dense_ms = (p <= DENSE_KERNEL_MAX_NODES).then(|| {
        let t0 = Instant::now();
        let dense =
            engine::solve_problem_kernel::<f64>(&lp, KernelChoice::Dense).expect("dense f64 solve");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let err = (dense.objective_f64() - sparse.objective_f64()).abs();
        assert!(
            err <= BACKEND_TOLERANCE * (1.0 + dense.objective_f64().abs()),
            "p={p}: kernel disagreement |Δ| = {err:.3e}"
        );
        ms
    });

    let (exact_ms, abs_error) = if p <= CROSS_CHECK_MAX_NODES {
        let t0 = Instant::now();
        let exact = engine::solve(&f, &g).expect("exact solve");
        let exact_ms = t0.elapsed().as_secs_f64() * 1e3;
        let abs_error = (exact.ntask.to_f64() - sparse.objective_f64()).abs();
        assert!(
            abs_error <= BACKEND_TOLERANCE,
            "p={p}: backend disagreement |Δ| = {abs_error:.3e}"
        );
        (Some(exact_ms), Some(abs_error))
    } else {
        (None, None)
    };

    SweepPoint {
        p,
        edges: g.num_edges(),
        vars: sparse.num_vars(),
        rows: sparse.num_constraints(),
        native_rows,
        lowered_rows,
        sparse_ms,
        sparse_pivots: sparse.iterations(),
        lowered_ms,
        dense_ms,
        exact_ms,
        abs_error,
    }
}

/// §3: LP solve time vs platform size (each instance built once, solves
/// timed in isolation) — sparse f64 kernel with native bounds end to end
/// (p = 512, reachable since the sparse-LU basis keeps FTRAN/BTRAN at
/// O(factor nnz)), the same kernel on lowered bound rows as the PR 2
/// baseline up to p = 192, dense f64 kernel paired up to p = 48, exact
/// cross-check up to p = 24 (exact timing includes certificate
/// verification). Points run in parallel; results recorded to
/// `BENCH_lp_sparse.json` and `BENCH_lp_bounded.json`.
pub fn lp_scale() {
    banner(
        "lp-scale",
        "§3 — SSMS LP solve time vs platform size (bounded vs lowered, sparse vs dense, exact cross-check)",
    );
    let ps = vec![4usize, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 512];
    let points = par_map(ps, sweep_point);

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|pt| {
            vec![
                pt.p.to_string(),
                pt.edges.to_string(),
                pt.vars.to_string(),
                format!("{}/{}", pt.native_rows, pt.lowered_rows),
                format!("{:.2}", pt.sparse_ms),
                pt.lowered_ms.map_or("-".into(), |ms| format!("{ms:.2}")),
                pt.lowered_ms
                    .map_or("-".into(), |ms| format!("{:.1}x", ms / pt.sparse_ms)),
                pt.dense_ms.map_or("-".into(), |ms| format!("{ms:.2}")),
                pt.exact_ms.map_or("-".into(), |ms| format!("{ms:.2}")),
                pt.sparse_pivots.to_string(),
                pt.abs_error
                    .map_or("skipped".into(), |e| format!("|Δ|={e:.1e}")),
            ]
        })
        .collect();
    print_table(
        &[
            "p",
            "|E|",
            "vars",
            "rows n/l",
            "bounded ms",
            "lowered ms",
            "speedup",
            "dense ms",
            "exact ms",
            "pivots",
            "agree",
        ],
        &rows,
    );
    println!(
        "shape: polynomial growth in |V|+|E| (the §3 claim); native bounds keep the basis at \
         the explicit-row count (≥ {BOUNDED_ROW_FACTOR}x fewer rows than lowering from \
         p = {BOUNDED_ROW_FACTOR_MIN_NODES}, asserted), the dense tableau pairs the sparse \
         kernel up to p = {DENSE_KERNEL_MAX_NODES}, and the exact kernel certifies both up \
         to p = {CROSS_CHECK_MAX_NODES}."
    );

    println!("\nper-formulation dense-vs-sparse pairing (f64 backend, identical instances):");
    let pairs = crate::kernels::formulation_pairings();
    crate::kernels::print_pairings(&pairs);

    match write_bench_json(&points, &pairs) {
        Ok(path) => println!("recorded kernel pairings to {path}"),
        Err(e) => eprintln!("could not write BENCH_lp_sparse.json: {e}"),
    }
    match write_bounded_json(&points) {
        Ok(path) => println!("recorded bounded-vs-lowered pairing to {path}"),
        Err(e) => eprintln!("could not write BENCH_lp_bounded.json: {e}"),
    }
}

/// Record the sweep and the formulation pairings as JSON next to the
/// repo's other experiment artifacts (workspace root).
fn write_bench_json(
    points: &[SweepPoint],
    pairs: &[crate::kernels::KernelPairing],
) -> std::io::Result<String> {
    let mut s = String::from("{\n  \"lp_scale\": [\n");
    for (i, pt) in points.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"p\": {}, \"edges\": {}, \"vars\": {}, \"rows\": {}, \"sparse_f64_ms\": {:.3}, \
             \"dense_f64_ms\": {}, \"exact_ms\": {}, \"sparse_pivots\": {}, \"abs_error\": {}}}",
            pt.p,
            pt.edges,
            pt.vars,
            pt.rows,
            pt.sparse_ms,
            pt.dense_ms
                .map_or("null".into(), |ms| format!("{ms:.3}")),
            pt.exact_ms
                .map_or("null".into(), |ms| format!("{ms:.3}")),
            pt.sparse_pivots,
            pt.abs_error
                .map_or("null".into(), |e| format!("{e:.3e}")),
        );
        s.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"formulations\": [\n");
    for (i, p) in pairs.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"dense_f64_ms\": {:.4}, \"sparse_f64_ms\": {:.4}, \
             \"speedup\": {:.2}}}",
            p.name,
            p.dense_ms,
            p.sparse_ms,
            p.speedup()
        );
        s.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lp_sparse.json");
    std::fs::write(path, s)?;
    Ok("BENCH_lp_sparse.json".into())
}

/// Record the bounded-vs-lowered pairing (row counts and sparse-kernel
/// solve times per platform size) to `BENCH_lp_bounded.json`.
fn write_bounded_json(points: &[SweepPoint]) -> std::io::Result<String> {
    let mut s = String::from("{\n  \"lp_bounded\": [\n");
    for (i, pt) in points.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"p\": {}, \"edges\": {}, \"vars\": {}, \"explicit_rows\": {}, \
             \"native_rows\": {}, \"lowered_rows\": {}, \"row_factor\": {:.2}, \
             \"bounded_sparse_ms\": {:.3}, \"lowered_sparse_ms\": {}, \"speedup\": {}}}",
            pt.p,
            pt.edges,
            pt.vars,
            pt.rows,
            pt.native_rows,
            pt.lowered_rows,
            pt.lowered_rows as f64 / pt.native_rows as f64,
            pt.sparse_ms,
            pt.lowered_ms.map_or("null".into(), |ms| format!("{ms:.3}")),
            pt.lowered_ms
                .map_or("null".into(), |ms| format!("{:.2}", ms / pt.sparse_ms)),
        );
        s.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lp_bounded.json");
    std::fs::write(path, s)?;
    Ok("BENCH_lp_bounded.json".into())
}

/// §4.1: weighted edge-coloring decomposition — number of matchings
/// (≤ |E| + 2|V|; the paper cites a ≤ |E| bound for Schrijver's algorithm)
/// and wall-clock time vs |E|.
///
/// Busy times come from f64 SSMS solves (scaled to integers) for several
/// concurrent applications with distinct masters — a multi-tenant
/// steady-state load. A single LP solution is a sparse simplex vertex;
/// superposing a few makes the coloring instance realistically dense, and
/// the whole LP side of the sweep rides the fast backend.
pub fn coloring_scale() {
    banner(
        "coloring-scale",
        "§4.1 — edge-coloring decomposition scaling (f64-derived busy times)",
    );
    // Busy-time resolution: f64 edge activities in [0, 1] scale to [0, RES].
    const RES: f64 = 10_000.0;
    // Concurrent steady-state applications sharing the platform.
    const APPS: usize = 4;
    let rows = par_map(vec![4usize, 8, 12, 16, 24, 32], |p| {
        let mut rng = StdRng::seed_from_u64(4000 + p as u64);
        let (g, m) = topo::random_connected(&mut rng, p, 0.3, &topo::ParamRange::default());
        let mut busy = vec![BigInt::zero(); g.num_edges()];
        for app in 0..APPS.min(p) {
            let master = if app == 0 {
                m
            } else {
                NodeId((app * p) / APPS)
            };
            let f = MasterSlave::new(master);
            let (vars, approx) =
                engine::solve_backend_with_vars::<f64, _>(&f, &g).expect("f64 solve");
            if p <= CROSS_CHECK_MAX_NODES {
                let exact = engine::solve(&f, &g).expect("exact solve");
                let abs_error = (exact.ntask.to_f64() - approx.objective_f64()).abs();
                assert!(
                    abs_error <= BACKEND_TOLERANCE,
                    "p={p}: backend disagreement |Δ| = {abs_error:.3e}"
                );
            }
            // Each application contributes its share of a fair time-split
            // of the edge busy fractions (the typed s handles, no layout
            // assumptions).
            for (b, &sv) in busy.iter_mut().zip(&vars.s) {
                let s = *approx.value(sv);
                *b += &BigInt::from((s.clamp(0.0, 1.0) * RES / APPS as f64).round() as u32);
            }
        }
        let t0 = Instant::now();
        let d = decompose(&g, &busy);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        d.check(&g, &busy).expect("exact decomposition");
        vec![
            p.to_string(),
            g.num_edges().to_string(),
            d.num_rounds().to_string(),
            (g.num_edges() + 2 * g.num_nodes()).to_string(),
            format!("{ms:.2}"),
        ]
    });
    print_table(&["p", "|E|", "matchings", "bound", "ms"], &rows);
    println!("shape: matchings stay well under the bound; cost grows polynomially (the §4.1 O(|E|^2) regime).");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sweep reads per-edge busy fractions through the typed `SsmsVars`
    /// handles; pin that `s` is one handle per edge in edge order.
    #[test]
    fn ssms_vars_expose_one_s_per_edge() {
        let mut rng = StdRng::seed_from_u64(9);
        let (g, m) = topo::random_connected(&mut rng, 6, 0.3, &topo::ParamRange::default());
        let f = MasterSlave::new(m);
        let (vars, acts) = engine::solve_backend_with_vars::<f64, _>(&f, &g).unwrap();
        assert_eq!(vars.s.len(), g.num_edges());
        for &sv in &vars.s {
            let v = *acts.value(sv);
            assert!((0.0..=1.0 + 1e-9).contains(&v));
        }
    }
}
