//! Polynomial-cost claims: LP solve scaling (§3) and edge-coloring
//! scaling (§4.1). Rough wall-clock numbers here; precise statistics in
//! the Criterion benches.
//!
//! Both sweeps run on the **f64 backend** (Dantzig pricing) so they reach
//! platform sizes where exact rationals are needlessly expensive, and
//! cross-check the f64 objective against the exact, duality-certified
//! backend on every platform small enough to afford it.

use crate::table::{banner, print_table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ss_core::engine;
use ss_core::master_slave::MasterSlave;
use ss_num::BigInt;
use ss_platform::topo;
use ss_platform::NodeId;
use ss_schedule::coloring::decompose;
use std::time::Instant;

/// Platforms up to this node count also run the exact backend for the
/// cross-check; larger ones trust the (already-anchored) fast path.
const CROSS_CHECK_MAX_NODES: usize = 24;

/// Objective agreement tolerance between the two backends (absolute; the
/// steady-state objectives are O(1)-scaled).
pub const BACKEND_TOLERANCE: f64 = 1e-6;

/// §3: LP build + solve time vs platform size, f64 backend with exact
/// cross-check.
pub fn lp_scale() {
    banner(
        "lp-scale",
        "§3 — SSMS LP solve time vs platform size (f64 backend, exact cross-check)",
    );
    let mut rows = Vec::new();
    for p in [4usize, 6, 8, 12, 16, 24, 32, 48] {
        let mut rng = StdRng::seed_from_u64(p as u64);
        let (g, m) = topo::random_connected(&mut rng, p, 0.25, &topo::ParamRange::default());
        let f = MasterSlave::new(m);

        let t0 = Instant::now();
        let approx = engine::solve_approx(&f, &g).expect("f64 solve");
        let f64_ms = t0.elapsed().as_secs_f64() * 1e3;

        let (exact_ms, agree) = if p <= CROSS_CHECK_MAX_NODES {
            let t0 = Instant::now();
            let exact = engine::solve(&f, &g).expect("exact solve");
            let exact_ms = t0.elapsed().as_secs_f64() * 1e3;
            let abs_error = (exact.ntask.to_f64() - approx.objective_f64()).abs();
            assert!(
                abs_error <= BACKEND_TOLERANCE,
                "p={p}: backend disagreement |Δ| = {abs_error:.3e}"
            );
            (format!("{exact_ms:.2}"), format!("|Δ|={abs_error:.1e}"))
        } else {
            ("-".into(), "skipped".into())
        };

        rows.push(vec![
            p.to_string(),
            g.num_edges().to_string(),
            approx.num_vars().to_string(),
            approx.num_constraints().to_string(),
            format!("{f64_ms:.2}"),
            exact_ms,
            approx.iterations().to_string(),
            agree,
        ]);
    }
    print_table(
        &[
            "p", "|E|", "vars", "rows", "f64 ms", "exact ms", "pivots", "agree",
        ],
        &rows,
    );
    println!(
        "shape: polynomial growth in |V|+|E| (the §3 claim); the f64 kernel runs the sweep, \
         the exact kernel certifies it up to p = {CROSS_CHECK_MAX_NODES}."
    );
}

/// §4.1: weighted edge-coloring decomposition — number of matchings
/// (≤ |E| + 2|V|; the paper cites a ≤ |E| bound for Schrijver's algorithm)
/// and wall-clock time vs |E|.
///
/// Busy times come from f64 SSMS solves (scaled to integers) for several
/// concurrent applications with distinct masters — a multi-tenant
/// steady-state load. A single LP solution is a sparse simplex vertex;
/// superposing a few makes the coloring instance realistically dense, and
/// the whole LP side of the sweep rides the fast backend.
pub fn coloring_scale() {
    banner(
        "coloring-scale",
        "§4.1 — edge-coloring decomposition scaling (f64-derived busy times)",
    );
    let mut rows = Vec::new();
    // Busy-time resolution: f64 edge activities in [0, 1] scale to [0, RES].
    const RES: f64 = 10_000.0;
    // Concurrent steady-state applications sharing the platform.
    const APPS: usize = 4;
    for p in [4usize, 8, 12, 16, 24, 32] {
        let mut rng = StdRng::seed_from_u64(4000 + p as u64);
        let (g, m) = topo::random_connected(&mut rng, p, 0.3, &topo::ParamRange::default());
        let mut busy = vec![BigInt::zero(); g.num_edges()];
        for app in 0..APPS.min(p) {
            let master = if app == 0 {
                m
            } else {
                NodeId((app * p) / APPS)
            };
            let f = MasterSlave::new(master);
            let (vars, approx) =
                engine::solve_backend_with_vars::<f64, _>(&f, &g).expect("f64 solve");
            if p <= CROSS_CHECK_MAX_NODES {
                let exact = engine::solve(&f, &g).expect("exact solve");
                let abs_error = (exact.ntask.to_f64() - approx.objective_f64()).abs();
                assert!(
                    abs_error <= BACKEND_TOLERANCE,
                    "p={p}: backend disagreement |Δ| = {abs_error:.3e}"
                );
            }
            // Each application contributes its share of a fair time-split
            // of the edge busy fractions (the typed s handles, no layout
            // assumptions).
            for (b, &sv) in busy.iter_mut().zip(&vars.s) {
                let s = *approx.value(sv);
                *b += &BigInt::from((s.clamp(0.0, 1.0) * RES / APPS as f64).round() as u32);
            }
        }
        let t0 = Instant::now();
        let d = decompose(&g, &busy);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        d.check(&g, &busy).expect("exact decomposition");
        rows.push(vec![
            p.to_string(),
            g.num_edges().to_string(),
            d.num_rounds().to_string(),
            (g.num_edges() + 2 * g.num_nodes()).to_string(),
            format!("{ms:.2}"),
        ]);
    }
    print_table(&["p", "|E|", "matchings", "bound", "ms"], &rows);
    println!("shape: matchings stay well under the bound; cost grows polynomially (the §4.1 O(|E|^2) regime).");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sweep reads per-edge busy fractions through the typed `SsmsVars`
    /// handles; pin that `s` is one handle per edge in edge order.
    #[test]
    fn ssms_vars_expose_one_s_per_edge() {
        let mut rng = StdRng::seed_from_u64(9);
        let (g, m) = topo::random_connected(&mut rng, 6, 0.3, &topo::ParamRange::default());
        let f = MasterSlave::new(m);
        let (vars, acts) = engine::solve_backend_with_vars::<f64, _>(&f, &g).unwrap();
        assert_eq!(vars.s.len(), g.num_edges());
        for &sv in &vars.s {
            let v = *acts.value(sv);
            assert!((0.0..=1.0 + 1e-9).contains(&v));
        }
    }
}
