//! Polynomial-cost claims: LP solve scaling (§3) and edge-coloring
//! scaling (§4.1). Rough wall-clock numbers here; precise statistics in
//! the Criterion benches.

use crate::table::{banner, print_table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ss_core::master_slave::{self, PortModel};
use ss_num::BigInt;
use ss_platform::topo;
use ss_schedule::coloring::decompose;
use std::time::Instant;

/// §3: LP build + solve time vs platform size, exact vs f64 kernels.
pub fn lp_scale() {
    banner("lp-scale", "§3 — SSMS LP solve time vs platform size (exact vs f64)");
    let mut rows = Vec::new();
    for p in [4usize, 6, 8, 12, 16, 24] {
        let mut rng = StdRng::seed_from_u64(p as u64);
        let (g, m) = topo::random_connected(&mut rng, p, 0.25, &topo::ParamRange::default());
        let (prob, _) = master_slave::build(&g, m, &PortModel::FullOverlapOnePort);

        let t0 = Instant::now();
        let exact = prob.solve_exact().expect("exact solve");
        let exact_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let f = prob.solve_f64().expect("f64 solve");
        let f64_ms = t0.elapsed().as_secs_f64() * 1e3;

        let agree = (exact.objective().to_f64() - f.objective()).abs() < 1e-6;
        rows.push(vec![
            p.to_string(),
            g.num_edges().to_string(),
            prob.num_vars().to_string(),
            prob.num_constraints().to_string(),
            format!("{:.2}", exact_ms),
            format!("{:.2}", f64_ms),
            exact.iterations().to_string(),
            agree.to_string(),
        ]);
    }
    print_table(
        &["p", "|E|", "vars", "rows", "exact ms", "f64 ms", "pivots", "agree"],
        &rows,
    );
    println!("shape: polynomial growth in |V|+|E| (the §3 claim); the exact kernel pays a constant factor for bignum pivots.");
}

/// §4.1: weighted edge-coloring decomposition — number of matchings
/// (≤ |E| + 2|V|; the paper cites a ≤ |E| bound for Schrijver's algorithm)
/// and wall-clock time vs |E|.
pub fn coloring_scale() {
    banner("coloring-scale", "§4.1 — edge-coloring decomposition scaling");
    let mut rows = Vec::new();
    for p in [4usize, 8, 12, 16, 24, 32] {
        let mut rng = StdRng::seed_from_u64(4000 + p as u64);
        let (g, _) = topo::random_connected(&mut rng, p, 0.3, &topo::ParamRange::default());
        let busy: Vec<BigInt> = (0..g.num_edges())
            .map(|_| BigInt::from(rng.gen_range(0..100u32)))
            .collect();
        let t0 = Instant::now();
        let d = decompose(&g, &busy);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        d.check(&g, &busy).expect("exact decomposition");
        rows.push(vec![
            p.to_string(),
            g.num_edges().to_string(),
            d.num_rounds().to_string(),
            (g.num_edges() + 2 * g.num_nodes()).to_string(),
            format!("{:.2}", ms),
        ]);
    }
    print_table(&["p", "|E|", "matchings", "bound", "ms"], &rows);
    println!("shape: matchings stay well under the bound; cost grows polynomially (the §4.1 O(|E|^2) regime).");
}
