//! §3.2 / §4.2 / §4.3 collective-operation experiments.

use crate::table::{banner, print_table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ss_baselines::collectives::{bfs_tree_broadcast_rate, flat_tree_scatter_rate};
use ss_core::multicast::EdgeCoupling;
use ss_core::{all_to_all, broadcast as bc, multicast, reduce, scatter as sc};
use ss_num::Ratio;
use ss_platform::topo;
use ss_schedule::reconstruct_collective;
use ss_sim::simulate_collective;

/// §3.2: pipelined scatter — LP optimum vs the fixed flat tree, with
/// reconstruction and execution.
pub fn scatter() {
    banner(
        "scatter",
        "§3.2 — pipelined scatter: steady-state LP vs flat tree",
    );
    let mut rows = Vec::new();
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(7000 + seed);
        let p = 6 + (seed as usize % 3) * 2;
        let (g, src) = topo::random_connected(&mut rng, p, 0.3, &topo::ParamRange::default());
        let targets = topo::pick_targets(&mut rng, &g, src, 3);
        let sol = sc::solve(&g, src, &targets).expect("SSPS solves");
        let flat = flat_tree_scatter_rate(&g, src, &targets).expect("reachable");
        let sched = reconstruct_collective(&g, &sol).expect("reconstructs");
        sched.check(&g).expect("valid");
        let run = simulate_collective(&g, src, &targets, &sol.flows, &sched, 30);
        let gain = &sol.throughput / &flat;
        rows.push(vec![
            seed.to_string(),
            p.to_string(),
            sol.throughput.to_string(),
            flat.to_string(),
            format!("{:.3}", gain.to_f64()),
            (run.per_period.last().unwrap() == &run.plan_per_period).to_string(),
        ]);
    }
    print_table(
        &["seed", "p", "LP TP", "flat tree", "gain", "sim==LP"],
        &rows,
    );
    println!("shape: the LP (multi-path, contention-aware) never loses to the fixed tree; gains grow with heterogeneity.");
}

/// §4.3: broadcast — the max-LP bound is achievable (ref \[5\]); fixed BFS
/// trees and per-copy scatters undershoot it.
pub fn broadcast() {
    banner(
        "broadcast",
        "§4.3 — pipelined broadcast: max-LP vs BFS tree vs per-copy scatter",
    );
    let mut rows = Vec::new();
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(8000 + seed);
        let (g, src) = topo::random_connected(&mut rng, 6, 0.35, &topo::ParamRange::default());
        let targets: Vec<_> = g.node_ids().filter(|&n| n != src).collect();
        let lp = bc::solve(&g, src).expect("broadcast LP");
        let tree = bfs_tree_broadcast_rate(&g, src).expect("reachable");
        let per_copy = multicast::solve(&g, src, &targets, EdgeCoupling::Sum)
            .expect("sum LP")
            .throughput;
        rows.push(vec![
            seed.to_string(),
            lp.throughput.to_string(),
            tree.to_string(),
            per_copy.to_string(),
            format!("{:.3}", (&lp.throughput / &tree).to_f64()),
        ]);
        assert!(lp.throughput >= tree);
        assert!(lp.throughput >= per_copy);
    }
    print_table(
        &["seed", "LP (max)", "BFS tree", "per-copy (sum)", "LP/tree"],
        &rows,
    );
    println!("shape: max-LP >= both baselines everywhere; recipients re-serving copies is where the gain comes from.");
}

/// §4.2: reduce (reverse-broadcast duality) and personalized all-to-all.
pub fn reduce_a2a() {
    banner(
        "reduce-a2a",
        "§4.2 — reduce duality and personalized all-to-all",
    );
    let mut rows = Vec::new();
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(9000 + seed);
        let (g, root) = topo::random_connected(&mut rng, 5, 0.4, &topo::ParamRange::default());
        let red = reduce::solve(&g, root).expect("reduce");
        let bc_rev = bc::solve(&g.reversed(), root).expect("broadcast on G^T");
        let a2a = all_to_all::solve(&g).expect("all-to-all");
        let scatter_all: Vec<_> = g.node_ids().filter(|&n| n != root).collect();
        let scat = sc::solve(&g, root, &scatter_all).expect("scatter");
        rows.push(vec![
            seed.to_string(),
            red.throughput.to_string(),
            bc_rev.throughput.to_string(),
            (red.throughput == bc_rev.throughput).to_string(),
            scat.throughput.to_string(),
            a2a.throughput.to_string(),
        ]);
        assert_eq!(red.throughput, bc_rev.throughput);
        assert!(a2a.throughput <= scat.throughput);
    }
    print_table(
        &[
            "seed",
            "reduce TP",
            "bcast(G^T) TP",
            "dual ==",
            "scatter TP",
            "a2a TP",
        ],
        &rows,
    );
    println!("shape: reduce == broadcast on the transposed graph, exactly; all-to-all <= scatter (it carries p(p-1) streams).");
    let _ = Ratio::one(); // keep Ratio in scope for future extensions
}
