//! §4.2 DAG collections and the §1 "why" comparison.

use crate::table::{banner, print_table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ss_baselines::{heft_batch, simulate_tree_greedy, ServiceOrder};
use ss_core::{dag as dagm, master_slave};
use ss_num::{BigInt, Ratio};
use ss_platform::topo;
use ss_schedule::reconstruct_master_slave;
use ss_sim::simulate_master_slave;

/// §4.2: throughput of DAG collections (mixed data/task parallelism).
pub fn dag() {
    banner("dag", "§4.2 — collections of identical DAGs");
    let shapes: Vec<(&str, dagm::TaskGraph)> = vec![
        ("chain-3", dagm::TaskGraph::chain(3)),
        ("diamond", dagm::TaskGraph::diamond()),
        ("fork-join-4", dagm::TaskGraph::fork_join(4)),
    ];
    let mut rows = Vec::new();
    for seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let (g, master) = topo::random_connected(&mut rng, 5, 0.35, &topo::ParamRange::default());
        for (name, mut tg) in shapes.iter().map(|(n, t)| (*n, t.clone())) {
            // Pin the first task's data source to the master (inputs live
            // there), matching the master-slave story.
            let input = dagm::TaskId(0);
            tg.pin_task(input, master);
            let sol = dagm::solve(&g, &tg).expect("DAG LP solves");
            sol.check(&g, &tg).expect("invariants");
            // Upper bound: total compute rate / total work per instance.
            let total_work: Ratio = (0..tg.num_tasks())
                .map(|t| tg.task_work(dagm::TaskId(t)).clone())
                .sum();
            let ub = &g.total_compute_rate() / &total_work;
            rows.push(vec![
                seed.to_string(),
                name.to_string(),
                sol.throughput.to_string(),
                ub.to_string(),
                format!("{:.3}", (&sol.throughput / &ub).to_f64()),
            ]);
            assert!(sol.throughput <= ub);
        }
    }
    print_table(
        &["seed", "DAG", "rho (LP)", "compute bound", "rho/bound"],
        &rows,
    );
    println!("shape: rho never exceeds the aggregate-compute bound; communication-heavy DAGs sit further below it.");
}

/// Divisible-load scheduling (paper ref \[8\], §6): single-round DLT on a
/// star vs the steady-state fluid rate.
pub fn divisible() {
    banner(
        "divisible",
        "ref [8] — divisible load: single-round DLT vs steady-state rate",
    );
    let mut rng = StdRng::seed_from_u64(88);
    let params = topo::ParamRange {
        w_range: (1, 6),
        c_range: (1, 4),
        max_denominator: 1,
    };
    let (g, m) = topo::star(&mut rng, 7, &params);
    let plan = ss_core::divisible::single_round_bandwidth_order(&g, m).expect("DLT plan");
    plan.check(&g, m).expect("valid plan");
    // The ported engine formulation: exact certified rate, f64 cross-check
    // riding along for free.
    let cc = ss_core::engine::cross_check(&ss_core::divisible::Divisible::new(m), &g, 1e-6, |s| {
        s.rate.clone()
    })
    .expect("divisible backends agree");
    let rate = cc.exact.rate.clone();
    println!(
        "backends: exact rate {} vs f64 {:.6} (|Δ| = {:.1e}, duality-certified)",
        rate,
        cc.approx.objective_f64(),
        cc.abs_error
    );
    println!(
        "star with {} workers; single-round unit makespan = {} (~{:.4}); steady-state rate = {} (fluid unit time {:.4})",
        g.num_nodes() - 1,
        plan.unit_makespan,
        plan.unit_makespan.to_f64(),
        rate,
        rate.recip().to_f64()
    );
    let mut rows = Vec::new();
    for (i, share) in &plan.shares {
        rows.push(vec![
            g.node(*i).name.to_string(),
            g.cost_between(m, *i).unwrap().to_string(),
            g.node(*i).w.to_string(),
            share.to_string(),
        ]);
    }
    rows.push(vec![
        "master".into(),
        "-".into(),
        g.node(m).w.to_string(),
        plan.master_share.to_string(),
    ]);
    print_table(&["node", "c", "w", "load share"], &rows);
    let overhead = &plan.unit_makespan * &rate;
    println!(
        "single-round time / steady-state fluid bound = {} (~{:.3}) — the single round leaves late\n\
         workers idle while early chunks ship; multi-round steady-state pipelines it away (§5.2, ref [8]).",
        overhead,
        overhead.to_f64()
    );
}

/// Steady-state completion time for n tasks: simulate periods until the
/// cumulative count reaches n (whole periods; conservative for small n).
fn steady_time_for_n(
    g: &ss_platform::Platform,
    m: ss_platform::NodeId,
    sched: &ss_schedule::PeriodicSchedule,
    n: u64,
) -> Ratio {
    let per_u = sched.work_per_period().to_u64().unwrap_or(1).max(1);
    let max_periods = (n / per_u + g.num_nodes() as u64 + 4) as usize;
    let run = simulate_master_slave(g, m, sched, max_periods);
    let mut acc = BigInt::zero();
    for (i, done) in run.per_period.iter().enumerate() {
        acc += done;
        if acc >= BigInt::from(n) {
            return Ratio::from(&sched.period * &BigInt::from(i as u64 + 1));
        }
    }
    Ratio::from(&sched.period * &BigInt::from(max_periods as u64))
}

/// The "dual-rail" platform: a master feeding three workers through two
/// parallel relay rails. The cheapest route for every worker goes through
/// rail A, so single-route heuristics (HEFT's shortest-path tree, any
/// tree-based protocol) funnel all traffic through it and saturate at 1
/// task/unit — while the LP also uses rail B and sustains 3/2.
fn dual_rail() -> (ss_platform::Platform, ss_platform::NodeId) {
    use ss_platform::{Platform, Weight};
    let mut g = Platform::new();
    // A pure distributor master keeps the LP denominators (and hence the
    // period) small, which keeps the whole-period time accounting fair at
    // small n.
    let m = g.add_node("m", Weight::Infinite);
    let ra = g.add_node("railA", Weight::Infinite);
    let rb = g.add_node("railB", Weight::Infinite);
    g.add_edge(m, ra, Ratio::new(1, 2)).unwrap();
    g.add_edge(m, rb, Ratio::one()).unwrap();
    for i in 0..3 {
        let w = g.add_node(format!("w{i}"), Weight::from_int(1));
        g.add_edge(ra, w, Ratio::one()).unwrap();
        g.add_edge(rb, w, Ratio::one()).unwrap();
    }
    (g, m)
}

/// §1: why steady state — two comparisons, normalized to the LP lower
/// bound `n / ntask` (lower is better, 1.0 is unbeatable).
///
/// (a) A heterogeneous star: naive online policies (FIFO) plateau above
///     the bound; the informed bandwidth-centric order approaches it — as
///     paper ref \[11\] proves for trees. On trees, steady state's edge is
///     provability, not a large constant.
/// (b) A general multipath graph: every single-route heuristic (HEFT's
///     shortest-path tree) structurally caps below the LP rate; only the
///     steady-state schedule, which routes across both rails, converges
///     to 1 — the regime the paper's "why" is really about.
pub fn why() {
    banner("why", "§1 — makespan/online heuristics vs steady-state");

    // ---- (a) heterogeneous star (tree: all baselines apply) ----
    let mut rng = StdRng::seed_from_u64(2004);
    let params = topo::ParamRange {
        w_range: (1, 8),
        c_range: (1, 4),
        max_denominator: 1,
    };
    let (g, m) = topo::star(&mut rng, 6, &params);
    let sol = master_slave::solve(&g, m).expect("solves");
    let sched = reconstruct_master_slave(&g, &sol);
    println!(
        "(a) heterogeneous star: p = {}, ntask = {} (~{:.4}), T = {}",
        g.num_nodes(),
        sol.ntask,
        sol.ntask.to_f64(),
        sched.period
    );
    let mut rows = Vec::new();
    for n in [20u64, 100, 500, 2000] {
        let lb = &Ratio::from(n) / &sol.ntask;
        let norm = |t: &Ratio| format!("{:.3}", (t / &lb).to_f64());
        let t_ss = steady_time_for_n(&g, m, &sched, n);
        let t_heft = heft_batch(&g, m, n).makespan;
        let t_fifo = simulate_tree_greedy(&g, m, n, ServiceOrder::Fifo)
            .unwrap()
            .makespan;
        let t_bw = simulate_tree_greedy(&g, m, n, ServiceOrder::BandwidthCentric)
            .unwrap()
            .makespan;
        rows.push(vec![
            n.to_string(),
            norm(&t_ss),
            norm(&t_heft),
            norm(&t_fifo),
            norm(&t_bw),
        ]);
    }
    print_table(
        &[
            "n",
            "steady-state",
            "HEFT",
            "greedy FIFO",
            "greedy BW-centric",
        ],
        &rows,
    );
    println!(
        "shape: FIFO wastes the master's port on slow links and plateaus above 1; bandwidth-centric\n\
         approaches 1 (ref [11] proves it optimal on trees); steady-state converges to 1 by construction."
    );

    // ---- (b) dual-rail multipath platform (general graph) ----
    let (g2, m2) = dual_rail();
    let sol2 = master_slave::solve(&g2, m2).expect("solves");
    let sched2 = reconstruct_master_slave(&g2, &sol2);
    println!(
        "\n(b) dual-rail multipath platform: ntask = {} (~{:.4}) — single-route heuristics cap at ~1 task/unit",
        sol2.ntask,
        sol2.ntask.to_f64()
    );
    let mut rows = Vec::new();
    for n in [20u64, 100, 500, 2000] {
        let lb = &Ratio::from(n) / &sol2.ntask;
        let norm = |t: &Ratio| format!("{:.3}", (t / &lb).to_f64());
        let t_ss = steady_time_for_n(&g2, m2, &sched2, n);
        let t_heft = heft_batch(&g2, m2, n).makespan;
        rows.push(vec![n.to_string(), norm(&t_ss), norm(&t_heft)]);
    }
    print_table(&["n", "steady-state", "HEFT (single-route)"], &rows);
    println!(
        "shape: steady-state -> 1; HEFT plateaus near ntask/1 = {:.2} because its shortest-path tree\n\
         cannot split traffic across rails — the multipath/contention regime where only the LP view wins.",
        sol2.ntask.to_f64()
    );
}
