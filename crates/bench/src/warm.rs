//! Warm-started re-solve experiments: the `warm-scale` sweep and the
//! `warm-smoke` CI guard.
//!
//! §5.5 re-solves the steady-state LP every phase from observed
//! parameters. The [`warm_scale`] sweep drives a large SSMS platform
//! through ~20 drift phases twice — once through a hot
//! [`SolveSession`] (basis reuse) and once solving every phase from
//! scratch — and records pivots and wall-clock per phase to
//! `BENCH_lp_warm.json`, asserting in-sweep that warm re-solves pivot
//! strictly less on average. [`warm_smoke`] is the correctness guard:
//! small platforms, exact and `f64` sessions against per-phase cold
//! solves, certificates verified, and a shape-changing drift that must
//! trigger the cold fallback.

use crate::parallel::par_map;
use crate::table::{banner, print_table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ss_core::engine::{self, Formulation};
use ss_core::master_slave::MasterSlave;
use ss_core::session::SolveSession;
use ss_core::WarmOutcome;
use ss_lp::KernelChoice;
use ss_num::Ratio;
use ss_platform::{topo, Platform};
use ss_sim::dynamic::ParamScale;
use std::fmt::Write as _;
use std::time::Instant;

/// Drift phases per platform in the sweep (phase 0 is nominal/cold).
const PHASES: usize = 20;

/// Mild multiplicative drift: each node/edge is rescaled with probability
/// `prob` by a factor in [2/3, 3/2] — the NWS-style "machine got loaded /
/// link got congested" regime of §5.5.
fn random_drift(rng: &mut StdRng, g: &Platform, prob: f64) -> ParamScale {
    let mut s = ParamScale::nominal(g);
    for w in s.w_mult.iter_mut() {
        if rng.gen_bool(prob) {
            *w = Ratio::new(rng.gen_range(8..=18), 12);
        }
    }
    for c in s.c_mult.iter_mut() {
        if rng.gen_bool(prob) {
            *c = Ratio::new(rng.gen_range(8..=18), 12);
        }
    }
    s
}

struct PhasePoint {
    outcome: WarmOutcome,
    warm_pivots: usize,
    cold_pivots: usize,
    warm_ms: f64,
    cold_ms: f64,
}

struct WarmSweep {
    p: usize,
    phases: Vec<PhasePoint>,
    mean_warm: f64,
    mean_cold: f64,
}

fn sweep_platform(p: usize) -> WarmSweep {
    let mut rng = StdRng::seed_from_u64(p as u64);
    let (g, m) = topo::random_connected(&mut rng, p, 0.25, &topo::ParamRange::default());
    let f = MasterSlave::new(m);
    let mut sess: SolveSession<f64, MasterSlave> =
        SolveSession::with_kernel(MasterSlave::new(m), KernelChoice::Sparse);

    let mut drift_rng = StdRng::seed_from_u64(0xd21f7 + p as u64);
    let mut phases = Vec::with_capacity(PHASES);
    for t in 0..PHASES {
        let scale = if t == 0 {
            ParamScale::nominal(&g)
        } else {
            random_drift(&mut drift_rng, &g, 0.3)
        };
        let gp = scale.apply(&g);

        let t0 = Instant::now();
        let warm = sess.resolve(&gp).expect("warm re-solve");
        let warm_ms = t0.elapsed().as_secs_f64() * 1e3;

        // The cold reference: identical instance, fresh two-phase solve.
        let (lp, _) = f.build(&gp).expect("SSMS build");
        let t0 = Instant::now();
        let cold =
            engine::solve_problem_kernel::<f64>(&lp, KernelChoice::Sparse).expect("cold solve");
        let cold_ms = t0.elapsed().as_secs_f64() * 1e3;

        let err = (warm.activities.objective_f64() - cold.objective_f64()).abs();
        assert!(
            err <= crate::scale::BACKEND_TOLERANCE * (1.0 + cold.objective_f64().abs()),
            "p={p} phase={t}: warm/cold disagree |Δ| = {err:.3e}"
        );
        if t > 0 {
            assert_ne!(
                warm.telemetry.outcome,
                WarmOutcome::Cold,
                "p={p} phase={t}: session lost its warm state"
            );
        }
        phases.push(PhasePoint {
            outcome: warm.telemetry.outcome,
            warm_pivots: warm.telemetry.iterations,
            cold_pivots: cold.iterations(),
            warm_ms,
            cold_ms,
        });
    }

    // The sweep's reason to exist, asserted in-sweep: across the re-solve
    // phases (1..), basis reuse pivots strictly less on average.
    let resolves = &phases[1..];
    let mean_warm =
        resolves.iter().map(|q| q.warm_pivots).sum::<usize>() as f64 / resolves.len() as f64;
    let mean_cold =
        resolves.iter().map(|q| q.cold_pivots).sum::<usize>() as f64 / resolves.len() as f64;
    assert!(
        mean_warm < mean_cold,
        "p={p}: warm re-solves pivot no less than cold ({mean_warm:.1} vs {mean_cold:.1})"
    );
    WarmSweep {
        p,
        phases,
        mean_warm,
        mean_cold,
    }
}

/// `warm-scale`: a drifting p = 96 / 192 platform re-solved across
/// [`PHASES`] phases through a hot session vs from scratch; per-phase
/// pivots and times recorded to `BENCH_lp_warm.json`, with the in-sweep
/// assertion that warm re-solves pivot strictly less on average.
pub fn warm_scale() {
    banner(
        "warm-scale",
        "§5.5 — warm-started re-solve sessions vs cold per-phase solves (drifting SSMS)",
    );
    let sweeps = par_map(vec![96usize, 192], sweep_platform);

    for sw in &sweeps {
        println!("\np = {} ({} phases):", sw.p, sw.phases.len());
        let rows: Vec<Vec<String>> = sw
            .phases
            .iter()
            .enumerate()
            .map(|(t, q)| {
                vec![
                    t.to_string(),
                    q.outcome.to_string(),
                    q.warm_pivots.to_string(),
                    q.cold_pivots.to_string(),
                    format!("{:.2}", q.warm_ms),
                    format!("{:.2}", q.cold_ms),
                ]
            })
            .collect();
        print_table(
            &[
                "phase",
                "path",
                "warm pivots",
                "cold pivots",
                "warm ms",
                "cold ms",
            ],
            &rows,
        );
        println!(
            "mean over re-solves: warm {:.1} vs cold {:.1} pivots ({:.1}x fewer, asserted strict)",
            sw.mean_warm,
            sw.mean_cold,
            sw.mean_cold / sw.mean_warm.max(1.0)
        );
    }

    match write_warm_json(&sweeps) {
        Ok(path) => println!("\nrecorded warm-vs-cold phases to {path}"),
        Err(e) => eprintln!("could not write BENCH_lp_warm.json: {e}"),
    }
}

fn write_warm_json(sweeps: &[WarmSweep]) -> std::io::Result<String> {
    let mut s = String::from("{\n  \"warm_scale\": [\n");
    for (i, sw) in sweeps.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"p\": {}, \"mean_warm_pivots\": {:.2}, \"mean_cold_pivots\": {:.2}, \
             \"phases\": [",
            sw.p, sw.mean_warm, sw.mean_cold
        );
        for (t, q) in sw.phases.iter().enumerate() {
            let _ = write!(
                s,
                "      {{\"phase\": {}, \"path\": \"{}\", \"warm_pivots\": {}, \
                 \"cold_pivots\": {}, \"warm_ms\": {:.3}, \"cold_ms\": {:.3}}}",
                t, q.outcome, q.warm_pivots, q.cold_pivots, q.warm_ms, q.cold_ms
            );
            s.push_str(if t + 1 < sw.phases.len() { ",\n" } else { "\n" });
        }
        s.push_str("    ]}");
        s.push_str(if i + 1 < sweeps.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lp_warm.json");
    std::fs::write(path, s)?;
    Ok("BENCH_lp_warm.json".into())
}

/// `warm-smoke`: the CI guard for the warm-start machinery. Small
/// platforms, both scalar backends: session re-solves must agree with
/// per-phase cold solves (exactly for `Ratio`, within tolerance for
/// `f64`), verify duality certificates at checkpoints, go through the
/// warm machinery from phase 2 on, pivot less in total — and a
/// shape-changing drift must trigger the cold fallback, not an error.
pub fn warm_smoke() {
    banner(
        "warm-smoke",
        "warm-start regression guard — sessions vs cold re-solves, both backends, small p",
    );
    let mut rows = Vec::new();
    for p in [8usize, 12] {
        let mut rng = StdRng::seed_from_u64(11_000 + p as u64);
        let (g, m) = topo::random_connected(&mut rng, p, 0.3, &topo::ParamRange::default());
        let mut drift_rng = StdRng::seed_from_u64(22_000 + p as u64);

        let mut exact_sess: SolveSession<Ratio, MasterSlave> =
            SolveSession::new(MasterSlave::new(m));
        let mut fast_sess: SolveSession<f64, MasterSlave> = SolveSession::new(MasterSlave::new(m));
        let mut warm_pivots = 0usize;
        let mut cold_pivots = 0usize;
        let mut warm_used = 0usize;
        for t in 0..6 {
            let scale = if t == 0 {
                ParamScale::nominal(&g)
            } else {
                random_drift(&mut drift_rng, &g, 0.4)
            };
            let gp = scale.apply(&g);
            let exact = exact_sess.resolve(&gp).expect("exact warm re-solve");
            let cold = engine::solve_backend::<Ratio, _>(&MasterSlave::new(m), &gp)
                .expect("exact cold solve");
            assert_eq!(
                exact.activities.objective(),
                cold.objective(),
                "p={p} phase={t}: exact warm optimum drifted"
            );
            let fast = fast_sess.resolve(&gp).expect("f64 warm re-solve");
            let err = (fast.activities.objective_f64() - cold.objective().to_f64()).abs();
            assert!(
                err <= crate::scale::BACKEND_TOLERANCE,
                "p={p} phase={t}: f64 warm drifts by {err:.3e}"
            );
            if t > 0 {
                assert_ne!(
                    exact.telemetry.outcome,
                    WarmOutcome::Cold,
                    "p={p} phase={t}"
                );
                warm_pivots += exact.telemetry.iterations;
                cold_pivots += cold.iterations();
                if exact.telemetry.outcome.used_warm_basis() {
                    warm_used += 1;
                }
            }
            // Checkpoint: exact re-certification of both sessions.
            exact_sess.certify(&gp).expect("exact certification");
            fast_sess.certify(&gp).expect("f64-session certification");
        }
        assert!(
            warm_pivots < cold_pivots,
            "p={p}: warm re-solves did not save pivots ({warm_pivots} vs {cold_pivots})"
        );
        assert!(warm_used > 0, "p={p}: no re-solve reused the warm basis");

        // A platform of a different shape must fall back cold — and the
        // session must re-warm on the new shape afterwards.
        let mut rng2 = StdRng::seed_from_u64(33_000 + p as u64);
        let (g2, _) = topo::random_connected(&mut rng2, p + 3, 0.3, &topo::ParamRange::default());
        let fb = exact_sess.resolve(&g2).expect("shape-change re-solve");
        assert_eq!(fb.telemetry.outcome, WarmOutcome::ColdFallback, "p={p}");
        let rewarmed = exact_sess.resolve(&g2).expect("re-warm on new shape");
        assert!(rewarmed.telemetry.outcome.used_warm_basis(), "p={p}");

        rows.push(vec![
            p.to_string(),
            format!("{warm_used}/5"),
            warm_pivots.to_string(),
            cold_pivots.to_string(),
            exact_sess.stats().certifications.to_string(),
        ]);
    }
    print_table(
        &["p", "warm used", "warm pivots", "cold pivots", "certs"],
        &rows,
    );
    println!("sessions agree with cold re-solves on both backends (asserted; failures panic CI).");
}
