//! Warm-started re-solve experiments: the `warm-scale` sweep and the
//! `warm-smoke` / `dual-smoke` / `bench-check` CI guards.
//!
//! §5.5 re-solves the steady-state LP every phase from observed
//! parameters. The [`warm_scale`] sweep drives a large SSMS platform
//! through ~20 drift phases twice — once through a hot
//! [`SolveSession`] (basis reuse) and once solving every phase from
//! scratch — and records pivots, wall-clock and the warm path taken per
//! phase to `BENCH_lp_warm.json`, asserting in-sweep that warm re-solves
//! pivot strictly less on average **and never fall back cold**: with the
//! bounded dual simplex ahead of the composite primal repair, every
//! drifted basis is either restored on optimal-side bases
//! (`dual-repaired`) or patched primal-side (`repaired`).
//!
//! [`warm_smoke`] is the correctness guard (small platforms, exact and
//! `f64` sessions against per-phase cold solves, certificates verified,
//! shape-change fallback). [`dual_smoke`] is the dual-path guard: drift
//! aggressive enough to break primal feasibility every few phases must
//! route through the dual repair — zero cold fallbacks, both scalars,
//! answers identical to cold. [`bench_check`] is the regression gate: a
//! fresh sweep must not pivot more than 2x the committed
//! `BENCH_lp_warm.json` numbers at any recorded platform size.

use crate::parallel::par_map;
use crate::table::{banner, print_table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ss_core::engine::{self, Formulation};
use ss_core::master_slave::MasterSlave;
use ss_core::session::SolveSession;
use ss_core::WarmOutcome;
use ss_lp::{Factor, FactorChoice, KernelChoice, Pricing, SimplexOptions};
use ss_num::Ratio;
use ss_platform::{topo, Platform};
use ss_sim::dynamic::ParamScale;
use std::fmt::Write as _;
use std::time::Instant;

/// Drift phases per platform in the sweep (phase 0 is nominal/cold).
const PHASES: usize = 20;

/// Where the sweep records its phases (and where [`bench_check`] reads
/// the committed reference back from).
const BENCH_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lp_warm.json");

/// Mild multiplicative drift: each node/edge is rescaled with probability
/// `prob` by a factor in [2/3, 3/2] — the NWS-style "machine got loaded /
/// link got congested" regime of §5.5.
fn random_drift(rng: &mut StdRng, g: &Platform, prob: f64) -> ParamScale {
    let mut s = ParamScale::nominal(g);
    for w in s.w_mult.iter_mut() {
        if rng.gen_bool(prob) {
            *w = Ratio::new(rng.gen_range(8..=18), 12);
        }
    }
    for c in s.c_mult.iter_mut() {
        if rng.gen_bool(prob) {
            *c = Ratio::new(rng.gen_range(8..=18), 12);
        }
    }
    s
}

struct PhasePoint {
    outcome: WarmOutcome,
    warm_pivots: usize,
    cold_pivots: usize,
    warm_ms: f64,
    cold_ms: f64,
    build_ms: f64,
    snapshot_ms: f64,
    priced_columns: usize,
    pricing_ms: f64,
    factor_ms: f64,
    update_ms: f64,
    ftran_btran_ms: f64,
    factor_nnz: usize,
    fill_ratio: f64,
}

/// How many re-solves took each warm path (phase 0's hint-less cold solve
/// excluded).
#[derive(Default)]
struct PathCounts {
    warm: usize,
    dual_repaired: usize,
    repaired: usize,
    cold_fallback: usize,
}

struct WarmSweep {
    p: usize,
    phases: Vec<PhasePoint>,
    paths: PathCounts,
    mean_warm: f64,
    mean_cold: f64,
    mean_warm_ms: f64,
    mean_cold_ms: f64,
}

fn sweep_platform(p: usize) -> WarmSweep {
    let mut rng = StdRng::seed_from_u64(p as u64);
    let (g, m) = topo::random_connected(&mut rng, p, 0.25, &topo::ParamRange::default());
    let f = MasterSlave::new(m);
    let mut sess: SolveSession<f64, MasterSlave> =
        SolveSession::with_kernel(MasterSlave::new(m), KernelChoice::Sparse);

    let mut drift_rng = StdRng::seed_from_u64(0xd21f7 + p as u64);
    let mut phases = Vec::with_capacity(PHASES);
    let mut paths = PathCounts::default();
    for t in 0..PHASES {
        let scale = if t == 0 {
            ParamScale::nominal(&g)
        } else {
            random_drift(&mut drift_rng, &g, 0.3)
        };
        let gp = scale.apply(&g);

        // The session's own telemetry is the honest warm clock: it
        // excludes the formulation build (the cold reference builds its
        // problem outside the timer below, so an outer wall-clock here
        // would bill assembly against the warm column only — exactly the
        // asymmetry that once made a 3-pivot pure-warm re-solve look
        // slower than its 100-pivot cold reference) and the snapshot
        // capture that seeds the *next* phase.
        let warm = sess.resolve(&gp).expect("warm re-solve");
        let warm_ms = warm.telemetry.solve_ms;

        // The cold reference: identical instance, fresh two-phase solve.
        let (lp, _) = f.build(&gp).expect("SSMS build");
        let t0 = Instant::now();
        let cold =
            engine::solve_problem_kernel::<f64>(&lp, KernelChoice::Sparse).expect("cold solve");
        let cold_ms = t0.elapsed().as_secs_f64() * 1e3;

        let err = (warm.activities.objective_f64() - cold.objective_f64()).abs();
        assert!(
            err <= crate::scale::BACKEND_TOLERANCE * (1.0 + cold.objective_f64().abs()),
            "p={p} phase={t}: warm/cold disagree |Δ| = {err:.3e}"
        );
        if t > 0 {
            match warm.telemetry.outcome {
                WarmOutcome::Cold => panic!("p={p} phase={t}: session lost its warm state"),
                WarmOutcome::Warm => paths.warm += 1,
                WarmOutcome::DualRepaired => paths.dual_repaired += 1,
                WarmOutcome::Repaired => paths.repaired += 1,
                WarmOutcome::ColdFallback => paths.cold_fallback += 1,
            }
        }
        phases.push(PhasePoint {
            outcome: warm.telemetry.outcome,
            warm_pivots: warm.telemetry.iterations,
            cold_pivots: cold.iterations(),
            warm_ms,
            cold_ms,
            build_ms: warm.telemetry.build_ms,
            snapshot_ms: warm.telemetry.snapshot_ms,
            priced_columns: warm.telemetry.priced_columns,
            pricing_ms: warm.telemetry.pricing_ms,
            factor_ms: warm.telemetry.factor_ms,
            update_ms: warm.telemetry.update_ms,
            ftran_btran_ms: warm.telemetry.ftran_btran_ms,
            factor_nnz: warm.telemetry.factor_nnz,
            fill_ratio: warm.telemetry.fill_ratio,
        });
    }

    // The sweep's reason to exist, asserted in-sweep: across the re-solve
    // phases (1..), basis reuse pivots strictly less on average — and with
    // the dual repair ahead of the primal one, *no* drifted basis is ever
    // given up cold.
    let resolves = &phases[1..];
    let mean_warm =
        resolves.iter().map(|q| q.warm_pivots).sum::<usize>() as f64 / resolves.len() as f64;
    let mean_cold =
        resolves.iter().map(|q| q.cold_pivots).sum::<usize>() as f64 / resolves.len() as f64;
    assert!(
        mean_warm < mean_cold,
        "p={p}: warm re-solves pivot no less than cold ({mean_warm:.1} vs {mean_cold:.1})"
    );
    assert_eq!(
        paths.cold_fallback, 0,
        "p={p}: {} drifted re-solve(s) fell back cold despite the dual repair",
        paths.cold_fallback
    );
    // And fewer pivots must translate into less *time*: with devex on the
    // primal phases and candidate-list partial pricing on the dual
    // repairs, the warm path's higher per-pivot cost (BTRAN per violated
    // row, reference-weight bookkeeping) must stay under what the pivot
    // savings buy. Mean over the re-solves — single phases may wobble
    // with the OS scheduler, the mean may not.
    let mean_warm_ms = resolves.iter().map(|q| q.warm_ms).sum::<f64>() / resolves.len() as f64;
    let mean_cold_ms = resolves.iter().map(|q| q.cold_ms).sum::<f64>() / resolves.len() as f64;
    assert!(
        mean_warm_ms < mean_cold_ms,
        "p={p}: warm re-solves are no faster than cold on wall-clock \
         ({mean_warm_ms:.2}ms vs {mean_cold_ms:.2}ms)"
    );
    WarmSweep {
        p,
        phases,
        paths,
        mean_warm,
        mean_cold,
        mean_warm_ms,
        mean_cold_ms,
    }
}

/// `warm-scale`: a drifting p = 96 / 192 / 256 / 512 platform re-solved
/// across [`PHASES`] phases through a hot session vs from scratch;
/// per-phase pivots, times, snapshot overhead, factorization split and
/// warm paths recorded to `BENCH_lp_warm.json`, with the in-sweep
/// assertions that warm re-solves pivot strictly less on average, beat
/// cold on wall-clock, and never fall back cold. The p ≥ 256 points are
/// what the sparse-LU basis (see `ss_lp::factor`) unlocked: under the
/// eta file their per-phase FTRAN/BTRAN cost grew with accumulated
/// pivots and the sweep did not finish in CI budget.
pub fn warm_scale() {
    banner(
        "warm-scale",
        "§5.5 — warm-started re-solve sessions vs cold per-phase solves (drifting SSMS)",
    );
    println!(
        "process-default factorization: {:?} (set with repro --factor=...)",
        ss_lp::default_factor()
    );
    let sweeps = par_map(vec![96usize, 192, 256, 512], sweep_platform);

    for sw in &sweeps {
        println!("\np = {} ({} phases):", sw.p, sw.phases.len());
        let rows: Vec<Vec<String>> = sw
            .phases
            .iter()
            .enumerate()
            .map(|(t, q)| {
                vec![
                    t.to_string(),
                    q.outcome.to_string(),
                    q.warm_pivots.to_string(),
                    q.cold_pivots.to_string(),
                    format!("{:.2}", q.warm_ms),
                    format!("{:.2}", q.cold_ms),
                    format!("{:.3}", q.snapshot_ms),
                    q.priced_columns.to_string(),
                    format!("{:.3}", q.pricing_ms),
                    format!("{:.3}", q.factor_ms),
                    format!("{:.3}", q.update_ms),
                    format!("{:.3}", q.ftran_btran_ms),
                    format!("{:.2}", q.fill_ratio),
                ]
            })
            .collect();
        print_table(
            &[
                "phase",
                "path",
                "warm pivots",
                "cold pivots",
                "warm ms",
                "cold ms",
                "snapshot ms",
                "priced cols",
                "pricing ms",
                "factor ms",
                "update ms",
                "ftran ms",
                "fill",
            ],
            &rows,
        );
        println!(
            "paths over re-solves: {} warm, {} dual-repaired, {} repaired, {} cold-fallback \
             (zero asserted)",
            sw.paths.warm, sw.paths.dual_repaired, sw.paths.repaired, sw.paths.cold_fallback
        );
        println!(
            "mean over re-solves: warm {:.1} vs cold {:.1} pivots ({:.1}x fewer, asserted strict)",
            sw.mean_warm,
            sw.mean_cold,
            sw.mean_cold / sw.mean_warm.max(1.0)
        );
        println!(
            "mean over re-solves: warm {:.2}ms vs cold {:.2}ms wall-clock (asserted strict)",
            sw.mean_warm_ms, sw.mean_cold_ms
        );
    }

    match write_warm_json(&sweeps) {
        Ok(path) => println!("\nrecorded warm-vs-cold phases to {path}"),
        Err(e) => eprintln!("could not write BENCH_lp_warm.json: {e}"),
    }
}

fn write_warm_json(sweeps: &[WarmSweep]) -> std::io::Result<String> {
    let mut s = format!(
        "{{\n  \"factor\": \"{}\",\n  \"warm_scale\": [\n",
        ss_lp::default_factor().resolve::<f64>()
    );
    for (i, sw) in sweeps.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"p\": {}, \"mean_warm_pivots\": {:.2}, \"mean_cold_pivots\": {:.2}, \
             \"mean_warm_ms\": {:.3}, \"mean_cold_ms\": {:.3}, \
             \"paths\": {{\"warm\": {}, \"dual_repaired\": {}, \"repaired\": {}, \
             \"cold_fallback\": {}}}, \"phases\": [",
            sw.p,
            sw.mean_warm,
            sw.mean_cold,
            sw.mean_warm_ms,
            sw.mean_cold_ms,
            sw.paths.warm,
            sw.paths.dual_repaired,
            sw.paths.repaired,
            sw.paths.cold_fallback
        );
        for (t, q) in sw.phases.iter().enumerate() {
            let _ = write!(
                s,
                "      {{\"phase\": {}, \"path\": \"{}\", \"warm_pivots\": {}, \
                 \"cold_pivots\": {}, \"warm_ms\": {:.3}, \"cold_ms\": {:.3}, \
                 \"build_ms\": {:.3}, \"snapshot_ms\": {:.3}, \
                 \"priced_columns\": {}, \"pricing_ms\": {:.3}, \
                 \"factor_ms\": {:.3}, \"update_ms\": {:.3}, \
                 \"ftran_btran_ms\": {:.3}, \"factor_nnz\": {}, \
                 \"fill_ratio\": {:.3}}}",
                t,
                q.outcome,
                q.warm_pivots,
                q.cold_pivots,
                q.warm_ms,
                q.cold_ms,
                q.build_ms,
                q.snapshot_ms,
                q.priced_columns,
                q.pricing_ms,
                q.factor_ms,
                q.update_ms,
                q.ftran_btran_ms,
                q.factor_nnz,
                q.fill_ratio
            );
            s.push_str(if t + 1 < sw.phases.len() { ",\n" } else { "\n" });
        }
        s.push_str("    ]}");
        s.push_str(if i + 1 < sweeps.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    std::fs::write(BENCH_PATH, s)?;
    Ok("BENCH_lp_warm.json".into())
}

/// `warm-smoke`: the CI guard for the warm-start machinery. Small
/// platforms, both scalar backends: session re-solves must agree with
/// per-phase cold solves (exactly for `Ratio`, within tolerance for
/// `f64`), verify duality certificates at checkpoints, go through the
/// warm machinery from phase 2 on, pivot less in total — and a
/// shape-changing drift must migrate the live basis onto the new form
/// (the session-edit path) and still agree with a cold solve.
pub fn warm_smoke() {
    banner(
        "warm-smoke",
        "warm-start regression guard — sessions vs cold re-solves, both backends, small p",
    );
    let mut rows = Vec::new();
    for p in [8usize, 12] {
        let mut rng = StdRng::seed_from_u64(11_000 + p as u64);
        let (g, m) = topo::random_connected(&mut rng, p, 0.3, &topo::ParamRange::default());
        let mut drift_rng = StdRng::seed_from_u64(22_000 + p as u64);

        let mut exact_sess: SolveSession<Ratio, MasterSlave> =
            SolveSession::new(MasterSlave::new(m));
        let mut fast_sess: SolveSession<f64, MasterSlave> = SolveSession::new(MasterSlave::new(m));
        let mut warm_pivots = 0usize;
        let mut cold_pivots = 0usize;
        let mut warm_used = 0usize;
        for t in 0..6 {
            let scale = if t == 0 {
                ParamScale::nominal(&g)
            } else {
                random_drift(&mut drift_rng, &g, 0.4)
            };
            let gp = scale.apply(&g);
            let exact = exact_sess.resolve(&gp).expect("exact warm re-solve");
            let cold = engine::solve_backend::<Ratio, _>(&MasterSlave::new(m), &gp)
                .expect("exact cold solve");
            assert_eq!(
                exact.activities.objective(),
                cold.objective(),
                "p={p} phase={t}: exact warm optimum drifted"
            );
            let fast = fast_sess.resolve(&gp).expect("f64 warm re-solve");
            let err = (fast.activities.objective_f64() - cold.objective().to_f64()).abs();
            assert!(
                err <= crate::scale::BACKEND_TOLERANCE,
                "p={p} phase={t}: f64 warm drifts by {err:.3e}"
            );
            if t > 0 {
                assert_ne!(
                    exact.telemetry.outcome,
                    WarmOutcome::Cold,
                    "p={p} phase={t}"
                );
                warm_pivots += exact.telemetry.iterations;
                cold_pivots += cold.iterations();
                if exact.telemetry.outcome.used_warm_basis() {
                    warm_used += 1;
                }
            }
            // Checkpoint: exact re-certification of both sessions.
            exact_sess.certify(&gp).expect("exact certification");
            fast_sess.certify(&gp).expect("f64-session certification");
        }
        assert!(
            warm_pivots < cold_pivots,
            "p={p}: warm re-solves did not save pivots ({warm_pivots} vs {cold_pivots})"
        );
        assert!(warm_used > 0, "p={p}: no re-solve reused the warm basis");

        // A platform of a different shape no longer gives the basis up:
        // the session diffs the old and new form layouts, migrates the
        // live basis onto the grown LP, and must agree with a cold solve.
        let mut rng2 = StdRng::seed_from_u64(33_000 + p as u64);
        let (g2, _) = topo::random_connected(&mut rng2, p + 3, 0.3, &topo::ParamRange::default());
        let edited = exact_sess.resolve(&g2).expect("shape-change re-solve");
        assert_ne!(edited.telemetry.outcome, WarmOutcome::Cold, "p={p}");
        if edited.telemetry.outcome.used_warm_basis() {
            let edit = edited
                .telemetry
                .edit
                .unwrap_or_else(|| panic!("p={p}: warm shape change recorded no edit summary"));
            assert!(edit.added_cols > 0, "p={p}: grown LP added no columns");
        }
        let cold2 = engine::solve_backend::<Ratio, _>(&MasterSlave::new(m), &g2)
            .expect("exact cold solve on the grown shape");
        assert_eq!(
            edited.activities.objective(),
            cold2.objective(),
            "p={p}: migrated optimum drifted off the cold solve"
        );
        let rewarmed = exact_sess.resolve(&g2).expect("re-warm on new shape");
        assert!(rewarmed.telemetry.outcome.used_warm_basis(), "p={p}");

        rows.push(vec![
            p.to_string(),
            format!("{warm_used}/5"),
            warm_pivots.to_string(),
            cold_pivots.to_string(),
            exact_sess.stats().certifications.to_string(),
        ]);
    }
    print_table(
        &["p", "warm used", "warm pivots", "cold pivots", "certs"],
        &rows,
    );
    println!("sessions agree with cold re-solves on both backends (asserted; failures panic CI).");
}

/// Aggressive drift for the dual-path guard: half the parameters move,
/// by up to ~1.7x either way — enough to knock the previous basis primal
/// infeasible every few phases without changing the LP's shape.
fn aggressive_drift(rng: &mut StdRng, g: &Platform) -> ParamScale {
    let mut s = ParamScale::nominal(g);
    for w in s.w_mult.iter_mut() {
        if rng.gen_bool(0.5) {
            *w = Ratio::new(rng.gen_range(7..=20), 12);
        }
    }
    for c in s.c_mult.iter_mut() {
        if rng.gen_bool(0.5) {
            *c = Ratio::new(rng.gen_range(7..=20), 12);
        }
    }
    s
}

/// `dual-smoke`: the CI guard for the bounded dual simplex on the warm
/// repair path. Drifted re-solves on both scalar backends must (a) never
/// fall back cold, (b) route through the dual repair at least once —
/// aggressive `ParamScale` drift reliably breaks primal feasibility —
/// and (c) agree with a fresh cold solve every phase (exactly for
/// `Ratio`, within tolerance for `f64`).
pub fn dual_smoke() {
    banner(
        "dual-smoke",
        "dual-repair regression guard — drifted re-solves must take the dual path, never cold",
    );
    let mut rows = Vec::new();

    // f64 backend: big enough that drift breaks feasibility every few
    // phases (the regime warm-scale sees at p = 192, shrunk for CI).
    {
        let p = 64usize;
        let mut rng = StdRng::seed_from_u64(44_000 + p as u64);
        let (g, m) = topo::random_connected(&mut rng, p, 0.3, &topo::ParamRange::default());
        let mut drift_rng = StdRng::seed_from_u64(55_000 + p as u64);
        let mut sess: SolveSession<f64, MasterSlave> =
            SolveSession::with_kernel(MasterSlave::new(m), KernelChoice::Sparse);
        let mut dual = 0usize;
        let mut fallback = 0usize;
        for t in 0..10 {
            let scale = if t == 0 {
                ParamScale::nominal(&g)
            } else {
                aggressive_drift(&mut drift_rng, &g)
            };
            let gp = scale.apply(&g);
            let warm = sess.resolve(&gp).expect("f64 warm re-solve");
            let cold =
                engine::solve_backend::<f64, _>(&MasterSlave::new(m), &gp).expect("f64 cold solve");
            let err = (warm.activities.objective_f64() - cold.objective_f64()).abs();
            assert!(
                err <= crate::scale::BACKEND_TOLERANCE * (1.0 + cold.objective_f64().abs()),
                "f64 p={p} phase={t}: warm/cold disagree |Δ| = {err:.3e}"
            );
            match warm.telemetry.outcome {
                WarmOutcome::DualRepaired => dual += 1,
                WarmOutcome::ColdFallback => fallback += 1,
                _ => {}
            }
        }
        assert_eq!(fallback, 0, "f64 p={p}: drifted re-solves fell back cold");
        assert!(
            dual > 0,
            "f64 p={p}: no drifted re-solve exercised the dual repair"
        );
        rows.push(vec![
            "f64".into(),
            p.to_string(),
            dual.to_string(),
            "0".into(),
        ]);
    }

    // Exact backend: smaller platform, same guarantees — plus exact
    // equality against the cold optimum and a verified certificate.
    {
        let p = 16usize;
        let mut rng = StdRng::seed_from_u64(66_000 + p as u64);
        let (g, m) = topo::random_connected(&mut rng, p, 0.35, &topo::ParamRange::default());
        let mut drift_rng = StdRng::seed_from_u64(77_000 + p as u64);
        let mut sess: SolveSession<Ratio, MasterSlave> =
            SolveSession::with_kernel(MasterSlave::new(m), KernelChoice::Sparse);
        let mut dual = 0usize;
        let mut fallback = 0usize;
        let mut last_gp = g.clone();
        for t in 0..10 {
            let scale = if t == 0 {
                ParamScale::nominal(&g)
            } else {
                aggressive_drift(&mut drift_rng, &g)
            };
            let gp = scale.apply(&g);
            let warm = sess.resolve(&gp).expect("exact warm re-solve");
            let cold = engine::solve_backend::<Ratio, _>(&MasterSlave::new(m), &gp)
                .expect("exact cold solve");
            assert_eq!(
                warm.activities.objective(),
                cold.objective(),
                "Ratio p={p} phase={t}: warm optimum drifted off the cold one"
            );
            match warm.telemetry.outcome {
                WarmOutcome::DualRepaired => dual += 1,
                WarmOutcome::ColdFallback => fallback += 1,
                _ => {}
            }
            last_gp = gp;
        }
        assert_eq!(fallback, 0, "Ratio p={p}: drifted re-solves fell back cold");
        assert!(
            dual > 0,
            "Ratio p={p}: no drifted re-solve exercised the dual repair"
        );
        // Certify the *last drifted* instance — the state the dual-repair
        // path actually produced, not the nominal platform.
        sess.certify(&last_gp).expect("final exact certification");
        rows.push(vec![
            "Ratio".into(),
            p.to_string(),
            dual.to_string(),
            "0".into(),
        ]);
    }

    print_table(&["backend", "p", "dual-repaired", "cold-fallback"], &rows);
    println!("dual repair carries drifted re-solves on both backends (asserted; failures panic).");
}

/// `pricing-smoke`: the CI guard for the pricing subsystem. A drifting
/// SSMS platform is re-solved through a warm session under the
/// **process-default** pricing rule — the CI step runs this twice, via
/// `repro --pricing=devex pricing-smoke` and `--pricing=dantzig` — and
/// every phase must agree with a Bland-forced cold reference. On top of
/// that, one drifted instance is solved cold under every *explicit* rule
/// on both scalar backends: all optima must coincide (exactly on `Ratio`,
/// within tolerance on `f64`), the recorded [`PivotRule`](ss_lp::PivotRule)
/// must match the requested rule, the exact solve must pass the full
/// LP-duality certificate under every rule, and the pricing telemetry
/// must actually count work (`priced_columns > 0`).
pub fn pricing_smoke() {
    banner(
        "pricing-smoke",
        "pricing-rule agreement guard — devex/dantzig/bland land on one optimum, warm and cold",
    );
    println!(
        "process-default pricing: {:?} (set with repro --pricing=...)",
        ss_lp::default_pricing()
    );

    let p = 24usize;
    let mut rng = StdRng::seed_from_u64(88_000 + p as u64);
    let (g, m) = topo::random_connected(&mut rng, p, 0.3, &topo::ParamRange::default());
    let f = MasterSlave::new(m);
    let mut drift_rng = StdRng::seed_from_u64(99_000 + p as u64);

    // Drift session under the process default; aggressive drift so the
    // dual repair (and with it the candidate-list pricer) gets exercised,
    // not just the pure-warm path.
    let mut sess: SolveSession<f64, MasterSlave> =
        SolveSession::with_kernel(MasterSlave::new(m), KernelChoice::Sparse);
    let mut rows = Vec::new();
    let mut last_gp = g.clone();
    for t in 0..8 {
        let scale = if t == 0 {
            ParamScale::nominal(&g)
        } else {
            aggressive_drift(&mut drift_rng, &g)
        };
        let gp = scale.apply(&g);
        let warm = sess.resolve(&gp).expect("drifted re-solve");
        let (lp, _) = f.build(&gp).expect("SSMS build");

        // The Bland-forced cold solve is the agreement reference: the
        // rule every scalar backend can run exactly.
        let bland = SimplexOptions {
            force_bland: true,
            ..SimplexOptions::default()
        };
        let reference = lp.solve_with::<f64>(&bland).expect("Bland reference");
        let err = (warm.activities.objective_f64() - reference.objective()).abs();
        assert!(
            err <= crate::scale::BACKEND_TOLERANCE * (1.0 + reference.objective().abs()),
            "phase {t}: session under {:?} pricing drifts off the Bland reference by {err:.3e}",
            ss_lp::default_pricing()
        );
        assert!(
            warm.telemetry.priced_columns > 0,
            "phase {t}: solve priced no columns — telemetry wiring broken"
        );

        rows.push(vec![
            t.to_string(),
            warm.telemetry.outcome.to_string(),
            warm.telemetry.iterations.to_string(),
            warm.telemetry.priced_columns.to_string(),
            format!("{:.3}", warm.telemetry.pricing_ms),
            format!("{err:.1e}"),
        ]);
        last_gp = gp;
    }
    print_table(
        &[
            "phase",
            "path",
            "pivots",
            "priced cols",
            "pricing ms",
            "|Δ| vs bland",
        ],
        &rows,
    );

    // Explicit rule matrix on the last drifted instance, cold, both
    // backends. Explicit Dantzig/devex are legal on the exact backend too
    // (the Bland stall-fallback past half the budget restores the
    // termination guarantee), so the matrix is 3 rules × 2 scalars.
    let (lp, _) = f.build(&last_gp).expect("SSMS build");
    let exact_ref = lp
        .solve_with::<Ratio>(&SimplexOptions::default())
        .expect("exact reference");
    for pricing in [Pricing::Bland, Pricing::Dantzig, Pricing::Devex] {
        let opts = SimplexOptions {
            pricing,
            ..SimplexOptions::default()
        };
        let fast = lp
            .solve_with::<f64>(&opts)
            .expect("explicit-rule f64 solve");
        assert_eq!(
            fast.pivot_rule(),
            pricing.resolve::<f64>(false),
            "f64 solve did not record the requested rule"
        );
        let err = (fast.objective() - exact_ref.objective().to_f64()).abs();
        assert!(
            err <= crate::scale::BACKEND_TOLERANCE * (1.0 + fast.objective().abs()),
            "{pricing:?} (f64) lands {err:.3e} off the exact optimum"
        );
        let exact = lp
            .solve_with::<Ratio>(&opts)
            .expect("explicit-rule exact solve");
        assert_eq!(
            exact.objective(),
            exact_ref.objective(),
            "{pricing:?} (Ratio) changed the exact optimum"
        );
        lp.verify_optimality(&exact)
            .unwrap_or_else(|e| panic!("{pricing:?} (Ratio) fails the duality certificate: {e}"));
    }
    println!(
        "bland/dantzig/devex agree on both backends, certificates verified (asserted; failures \
         panic CI)."
    );
}

/// `factor-smoke`: the CI guard for the basis-factorization subsystem. A
/// drifting SSMS platform is re-solved through a warm session under the
/// **process-default** factorization backend — the CI step runs this
/// twice, via `repro --factor=eta factor-smoke` and `--factor=lu` — and
/// every phase must agree with a cold reference. On top of that, one
/// drifted instance is solved cold under both *explicit* backends on both
/// scalar backends and both kernels: all optima must coincide (exactly on
/// `Ratio`, within tolerance on `f64`), the recorded
/// [`FactorStats`](ss_lp::FactorStats) backend tag must match the
/// requested one on the sparse kernel, the exact solves must pass the
/// full LP-duality certificate under both backends, and the factor
/// telemetry must actually count work (`refactorizations > 0` on the
/// sparse kernel).
pub fn factor_smoke() {
    banner(
        "factor-smoke",
        "basis-factorization agreement guard — eta file and sparse LU land on one optimum",
    );
    println!(
        "process-default factorization: {:?} (set with repro --factor=...)",
        ss_lp::default_factor()
    );

    let p = 24usize;
    let mut rng = StdRng::seed_from_u64(111_000 + p as u64);
    let (g, m) = topo::random_connected(&mut rng, p, 0.3, &topo::ParamRange::default());
    let f = MasterSlave::new(m);
    let mut drift_rng = StdRng::seed_from_u64(121_000 + p as u64);

    // Drift session under the process default; aggressive drift so the
    // dual repair's FTRAN/BTRAN traffic and the warm refactorization both
    // run against the selected backend, not just cold factorizations.
    let mut sess: SolveSession<f64, MasterSlave> =
        SolveSession::with_kernel(MasterSlave::new(m), KernelChoice::Sparse);
    let mut rows = Vec::new();
    let mut last_gp = g.clone();
    for t in 0..8 {
        let scale = if t == 0 {
            ParamScale::nominal(&g)
        } else {
            aggressive_drift(&mut drift_rng, &g)
        };
        let gp = scale.apply(&g);
        let warm = sess.resolve(&gp).expect("drifted re-solve");
        let (lp, _) = f.build(&gp).expect("SSMS build");
        let cold = lp
            .solve_with::<f64>(&SimplexOptions::default())
            .expect("cold reference");
        let err = (warm.activities.objective_f64() - cold.objective()).abs();
        assert!(
            err <= crate::scale::BACKEND_TOLERANCE * (1.0 + cold.objective().abs()),
            "phase {t}: session under {:?} factorization drifts off the cold reference by \
             {err:.3e}",
            ss_lp::default_factor()
        );
        rows.push(vec![
            t.to_string(),
            warm.telemetry.outcome.to_string(),
            warm.telemetry.iterations.to_string(),
            format!("{:.3}", warm.telemetry.factor_ms),
            format!("{:.3}", warm.telemetry.update_ms),
            format!("{:.3}", warm.telemetry.ftran_btran_ms),
            format!("{:.2}", warm.telemetry.fill_ratio),
            format!("{err:.1e}"),
        ]);
        last_gp = gp;
    }
    print_table(
        &[
            "phase",
            "path",
            "pivots",
            "factor ms",
            "update ms",
            "ftran ms",
            "fill",
            "|Δ| vs cold",
        ],
        &rows,
    );

    // Explicit backend matrix on the last drifted instance, cold:
    // 2 factorizations × 2 scalars × 2 kernels, all one optimum.
    let (lp, _) = f.build(&last_gp).expect("SSMS build");
    let exact_ref = lp
        .solve_with::<Ratio>(&SimplexOptions::default())
        .expect("exact reference");
    for factor in [FactorChoice::Eta, FactorChoice::Lu] {
        for kernel in [KernelChoice::Sparse, KernelChoice::Dense] {
            let opts = SimplexOptions {
                factor,
                kernel,
                ..SimplexOptions::default()
            };
            let fast = lp
                .solve_with::<f64>(&opts)
                .expect("explicit-backend f64 solve");
            let err = (fast.objective() - exact_ref.objective().to_f64()).abs();
            assert!(
                err <= crate::scale::BACKEND_TOLERANCE * (1.0 + fast.objective().abs()),
                "{factor:?}/{kernel:?} (f64) lands {err:.3e} off the exact optimum"
            );
            let exact = lp
                .solve_with::<Ratio>(&opts)
                .expect("explicit-backend exact solve");
            assert_eq!(
                exact.objective(),
                exact_ref.objective(),
                "{factor:?}/{kernel:?} (Ratio) changed the exact optimum"
            );
            lp.verify_optimality(&exact).unwrap_or_else(|e| {
                panic!("{factor:?}/{kernel:?} (Ratio) fails the duality certificate: {e}")
            });
            if kernel == KernelChoice::Sparse {
                // The sparse kernel must have run the backend it was
                // asked for — and actually factorized through it.
                for (scalar, stats) in [("f64", fast.factor()), ("Ratio", exact.factor())] {
                    assert_eq!(
                        stats.backend,
                        match factor {
                            FactorChoice::Eta => Factor::EtaFile,
                            _ => Factor::SparseLu,
                        },
                        "{scalar} solve did not record the requested factorization backend"
                    );
                    assert!(
                        stats.refactorizations > 0,
                        "{factor:?} ({scalar}): no refactorization counted — telemetry wiring \
                         broken"
                    );
                }
            }
        }
    }
    println!(
        "eta and sparse LU agree on both scalars and kernels, certificates verified (asserted; \
         failures panic CI)."
    );
}

/// `bench-check`: the bench-regression gate. Reruns the warm-scale sweep
/// at every platform size recorded in the **committed**
/// `BENCH_lp_warm.json` and fails if, at any of them, the fresh mean warm
/// pivot count regresses by more than 2x — or the fresh **warm/cold
/// wall-clock ratio** regresses past 2x the committed ratio (pivots
/// catch algorithmic regressions; the clock ratio catches a pricing rule
/// whose per-pivot bookkeeping quietly eats the pivot savings). The gate
/// compares ratios, not absolute milliseconds, so machine speed and
/// background load cancel out — the committed file may have been written
/// on a faster box than the CI runner. The sweep's own
/// in-sweep asserts — strictly-fewer-than-cold on pivots *and*
/// wall-clock, zero cold fallbacks — also run. The committed file is not
/// rewritten; `warm-scale` does that.
pub fn bench_check() {
    banner(
        "bench-check",
        "bench-regression gate — fresh warm-scale vs the committed BENCH_lp_warm.json",
    );
    let committed = std::fs::read_to_string(BENCH_PATH)
        .unwrap_or_else(|e| panic!("cannot read committed BENCH_lp_warm.json: {e}"));
    let doc = serde_json::parse(&committed)
        .unwrap_or_else(|e| panic!("committed BENCH_lp_warm.json is not valid JSON: {e}"));
    let sweeps = json_field(&doc, "warm_scale")
        .and_then(json_array)
        .expect("BENCH_lp_warm.json: missing `warm_scale` array");

    let reference: Vec<(usize, f64, f64)> = sweeps
        .iter()
        .map(|sw| {
            let p = json_field(sw, "p")
                .and_then(json_f64)
                .expect("sweep entry without `p`") as usize;
            let mean = json_field(sw, "mean_warm_pivots")
                .and_then(json_f64)
                .expect("sweep entry without `mean_warm_pivots`");
            let mean_ms = json_field(sw, "mean_warm_ms")
                .and_then(json_f64)
                .expect("sweep entry without `mean_warm_ms`");
            let mean_cold_ms = json_field(sw, "mean_cold_ms")
                .and_then(json_f64)
                .expect("sweep entry without `mean_cold_ms`");
            (p, mean, mean_ms / mean_cold_ms.max(1e-9))
        })
        .collect();
    assert!(!reference.is_empty(), "committed file records no sweeps");

    let fresh = par_map(
        reference.iter().map(|(p, _, _)| *p).collect(),
        sweep_platform,
    );

    let mut rows = Vec::new();
    let mut regressed = false;
    for ((p, committed_mean, committed_ratio), sw) in reference.iter().zip(&fresh) {
        // 2x headroom: pivot counts are deterministic under the sweep's
        // fixed seeds, so anything past 2x is a behavioral regression,
        // not noise. Tiny committed means get an absolute floor of one
        // pivot so a 0.4 → 0.9 wobble cannot fail the gate.
        let limit = committed_mean.max(1.0) * 2.0;
        let pivots_ok = sw.mean_warm <= limit;
        // The clock gate is a ratio of ratios: fresh warm/cold wall-clock
        // against the committed warm/cold, with the same 2x headroom.
        // Warm and cold re-solves run on the same machine under the same
        // load, so speed differences cancel; what's left is exactly the
        // per-pivot bookkeeping cost the pivot gate cannot see. A small
        // absolute floor (ratio 0.10) keeps sub-millisecond timer noise
        // at tiny p from failing an otherwise-huge warm advantage.
        let fresh_ratio = sw.mean_warm_ms / sw.mean_cold_ms.max(1e-9);
        let ratio_limit = (committed_ratio * 2.0).max(0.10);
        let ms_ok = fresh_ratio <= ratio_limit;
        regressed |= !pivots_ok || !ms_ok;
        rows.push(vec![
            p.to_string(),
            format!("{committed_mean:.2}"),
            format!("{:.2}", sw.mean_warm),
            format!("{limit:.2}"),
            format!("{committed_ratio:.3}"),
            format!("{fresh_ratio:.3}"),
            format!("{ratio_limit:.3}"),
            if pivots_ok && ms_ok {
                "ok".into()
            } else {
                "REGRESSED".into()
            },
        ]);
    }
    print_table(
        &[
            "p",
            "committed pivots",
            "fresh pivots",
            "limit (2x)",
            "committed ms ratio",
            "fresh ms ratio",
            "limit (2x)",
            "verdict",
        ],
        &rows,
    );
    assert!(
        !regressed,
        "warm-scale mean pivots or warm/cold wall-clock ratio regressed past 2x the committed \
         BENCH_lp_warm.json"
    );
    println!(
        "fresh warm-scale pivots and warm/cold wall-clock ratio within 2x of the committed \
         record at every p."
    );

    // The service slice of the gate: batched-over-unbatched throughput
    // and all-warm restarts vs the committed BENCH_service.json.
    crate::service::service_check();

    // The online-churn slice: warm/cold re-plan wall-clock ratio and
    // zero cold fallbacks vs the committed BENCH_lp_online.json.
    crate::online::online_check();
}

/// Look up `key` in a JSON object `Value`.
pub(crate) fn json_field<'a>(v: &'a serde_json::Value, key: &str) -> Option<&'a serde_json::Value> {
    match v {
        serde_json::Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

pub(crate) fn json_array(v: &serde_json::Value) -> Option<&[serde_json::Value]> {
    match v {
        serde_json::Value::Array(items) => Some(items),
        _ => None,
    }
}

pub(crate) fn json_f64(v: &serde_json::Value) -> Option<f64> {
    match v {
        serde_json::Value::Int(i) => Some(*i as f64),
        serde_json::Value::UInt(u) => Some(*u as f64),
        serde_json::Value::Float(f) => Some(*f),
        _ => None,
    }
}
