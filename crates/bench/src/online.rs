//! Online-churn experiments: the `online-scale` sweep, the
//! `online-smoke` CI guard, and the [`online_check`] slice of the
//! `bench-check` regression gate.
//!
//! The session-edit redesign's perf claim: when workers join and leave a
//! live platform, `SolveSession::apply` migrates the resident basis onto
//! the grown/shrunk LP (`ss_lp::EditPlan`) and repairs it with a handful
//! of pivots, instead of paying a cold refactorizing solve per event.
//! [`online_scale`] measures that on the heavy-tailed Poisson workload of
//! `ss_sim::online` at large pool sizes, replaying the **same** trace in
//! warm-with-edits and cold-per-event modes, and records pivots,
//! wall-clock and job-stretch percentiles (plus the rigid FCFS/EASY
//! batch baselines from `ss-baselines` for context) to
//! `BENCH_lp_online.json`. In-sweep asserts at every pool size: zero
//! cold fallbacks, both arrivals and departures observed, and a strictly
//! lower mean re-plan wall-clock than the cold baseline.
//! [`online_smoke`] is the small deterministic CI guard for the same
//! invariants; [`online_check`] compares a fresh warm/cold wall-clock
//! ratio against the committed record (a ratio of ratios, so machine
//! speed cancels).

use crate::table::{banner, print_table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ss_baselines::{backfill_batch, fcfs_batch, BatchJob, BatchOutcome};
use ss_core::master_slave::MasterSlave;
use ss_core::session::SolveSession;
use ss_platform::NodeId;
use ss_sim::online::{
    quantize, simulate_online, OnlineConfig, OnlineRun, OnlineTrace, ReplanMode, WorkerPool,
};
use std::fmt::Write as _;

/// Where the sweep records its points (and where [`online_check`] reads
/// the committed reference back from).
const BENCH_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lp_online.json");

/// Pool sizes of the recorded sweep: the redesign's acceptance sizes.
const SWEEP_P: [usize; 2] = [96, 192];

/// One re-plan mode's aggregate over a run.
struct ModeStats {
    replans: usize,
    cold_fallbacks: usize,
    migrations: usize,
    pivots: usize,
    mean_solve_ms: f64,
    mean_stretch: f64,
    p95_stretch: f64,
}

impl ModeStats {
    fn of(run: &OnlineRun) -> ModeStats {
        ModeStats {
            replans: run.replans.len(),
            cold_fallbacks: run.cold_fallbacks,
            migrations: run.migrations,
            pivots: run.total_iterations(),
            mean_solve_ms: run.total_solve_ms() / run.replans.len().max(1) as f64,
            mean_stretch: run.mean_stretch(),
            p95_stretch: run.stretch_percentile(0.95),
        }
    }
}

/// Mean and p95 stretch of a rigid batch schedule, measured against the
/// same yardstick as the online runs: flow time over the job's ideal
/// service time on the full cooperating cluster (`work / cluster_rate`),
/// not over the job's own rigid runtime — so a narrow allocation that
/// serves a job slowly shows up as stretch, exactly the throughput the
/// steady-state plan recovers.
struct BatchStats {
    mean_stretch: f64,
    p95_stretch: f64,
}

impl BatchStats {
    fn of(out: &BatchOutcome, run: &OnlineRun, cluster_rate: f64) -> BatchStats {
        let mut s: Vec<f64> = out
            .records
            .iter()
            .zip(&run.jobs)
            .map(|(r, j)| {
                let flow = (&r.finish - &j.arrival).to_f64();
                flow / (j.work.to_f64() / cluster_rate)
            })
            .collect();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((0.95 * s.len() as f64).ceil() as usize).clamp(1, s.len()) - 1;
        BatchStats {
            mean_stretch: s.iter().sum::<f64>() / s.len() as f64,
            p95_stretch: s[idx],
        }
    }
}

struct ScalePoint {
    p: usize,
    jobs: usize,
    warm: ModeStats,
    cold: ModeStats,
    fcfs: BatchStats,
    backfill: BatchStats,
}

/// The sweep's workload at pool size `p`: three quarters of the pool
/// present initially, churn free to dip to half, defaults otherwise
/// (Poisson arrivals, Pareto(1.5) work, 0.1 re-plan penalty).
fn online_cfg(p: usize, seed: u64) -> OnlineConfig {
    OnlineConfig {
        init_workers: p * 3 / 4,
        min_workers: p / 2,
        seed,
        ..OnlineConfig::default()
    }
}

/// Mean per-task time of the initially-present workers.
fn mean_w(pool: &WorkerPool, cfg: &OnlineConfig) -> f64 {
    pool.w[..cfg.init_workers]
        .iter()
        .map(|w| w.to_f64())
        .sum::<f64>()
        / cfg.init_workers as f64
}

/// The rigid-job view of the same trace for the batch baselines: a job of
/// `k` tasks asks for `ceil(k / min_work)` of the initially-present nodes
/// (heavy jobs go wide, up to the full cluster) and runs at perfect
/// speedup inside its allocation, with the pool's mean per-task time.
fn batch_view(run: &OnlineRun, pool: &WorkerPool, cfg: &OnlineConfig) -> Vec<BatchJob> {
    let nodes_total = cfg.init_workers;
    let w = mean_w(pool, cfg);
    run.jobs
        .iter()
        .map(|j| {
            let tasks = j.work.to_f64();
            let width = ((tasks / cfg.min_work.to_f64()).ceil() as usize).clamp(1, nodes_total);
            BatchJob {
                arrival: j.arrival.clone(),
                nodes: width,
                runtime: quantize(tasks * w / width as f64),
            }
        })
        .collect()
}

/// Run one sweep point: the same pool, config and trace through a
/// warm-with-edits session and a cold-per-event session, plus the batch
/// baselines, with the redesign's acceptance claims asserted in-sweep.
fn run_point(p: usize) -> ScalePoint {
    let mut rng = StdRng::seed_from_u64(0x0e11e + p as u64);
    let pool = WorkerPool::random(&mut rng, p);
    let cfg = online_cfg(p, 0xca11 + p as u64);
    let trace = OnlineTrace::generate(&cfg);
    assert!(trace.churn_events() > 0, "p={p}: trace has no churn");

    let mut warm_sess: SolveSession<f64, MasterSlave> =
        SolveSession::new(MasterSlave::new(NodeId(0)));
    let warm = simulate_online(&mut warm_sess, &pool, &cfg, &trace, ReplanMode::WarmEdits)
        .expect("warm online run");
    let mut cold_sess: SolveSession<f64, MasterSlave> =
        SolveSession::new(MasterSlave::new(NodeId(0)));
    let cold = simulate_online(
        &mut cold_sess,
        &pool,
        &cfg,
        &trace,
        ReplanMode::ColdPerEvent,
    )
    .expect("cold online run");

    // Identical trace and optima: both modes must execute the same
    // schedule and serve the same re-plan stream.
    assert_eq!(
        warm.replans.len(),
        cold.replans.len(),
        "p={p}: replan streams diverge"
    );
    for (a, b) in warm.jobs.iter().zip(&cold.jobs) {
        assert_eq!(a.finish, b.finish, "p={p}: warm/cold job timelines diverge");
    }
    // The redesign's acceptance claims, where they matter: at scale.
    assert_eq!(
        warm.cold_fallbacks, 0,
        "p={p}: a shape edit fell back to a cold solve"
    );
    assert!(
        warm.replans.iter().any(|r| r.arrival) && warm.replans.iter().any(|r| !r.arrival),
        "p={p}: trace exercised only one churn direction"
    );
    assert!(warm.migrations > 0, "p={p}: no re-plan migrated the basis");
    assert!(
        warm.total_iterations() <= cold.total_iterations(),
        "p={p}: warm re-plans pivot more than cold ({} vs {})",
        warm.total_iterations(),
        cold.total_iterations()
    );
    assert!(
        warm.total_solve_ms() < cold.total_solve_ms(),
        "p={p}: warm-with-edits is no faster than cold-per-event on mean re-plan wall-clock \
         ({:.3} ms vs {:.3} ms per re-plan)",
        warm.total_solve_ms() / warm.replans.len() as f64,
        cold.total_solve_ms() / cold.replans.len() as f64
    );

    let rigid = batch_view(&warm, &pool, &cfg);
    let cluster_rate = cfg.init_workers as f64 / mean_w(&pool, &cfg);
    let fcfs = BatchStats::of(&fcfs_batch(&rigid, cfg.init_workers), &warm, cluster_rate);
    let backfill = BatchStats::of(
        &backfill_batch(&rigid, cfg.init_workers),
        &warm,
        cluster_rate,
    );

    ScalePoint {
        p,
        jobs: warm.jobs.len(),
        warm: ModeStats::of(&warm),
        cold: ModeStats::of(&cold),
        fcfs,
        backfill,
    }
}

/// `online-scale`: arrivals/departures through a live session at large
/// pool sizes, warm-with-edits vs cold-per-event on the identical trace,
/// with FCFS/EASY rigid-batch baselines for stretch context, recorded to
/// `BENCH_lp_online.json`. In-sweep asserts at every `p`: zero cold
/// fallbacks, both churn directions observed, fewer warm pivots, and a
/// strictly lower warm mean re-plan wall-clock.
pub fn online_scale() {
    banner(
        "online-scale",
        "online churn — warm basis edits vs cold re-plans, with batch baselines",
    );
    let points: Vec<ScalePoint> = SWEEP_P.iter().map(|&p| run_point(p)).collect();

    let mut rows = Vec::new();
    for pt in &points {
        for (tag, st) in [("warm-edits", &pt.warm), ("cold/event", &pt.cold)] {
            rows.push(vec![
                pt.p.to_string(),
                tag.into(),
                st.replans.to_string(),
                st.cold_fallbacks.to_string(),
                st.migrations.to_string(),
                st.pivots.to_string(),
                format!("{:.3}", st.mean_solve_ms),
                format!("{:.2}", st.mean_stretch),
                format!("{:.2}", st.p95_stretch),
            ]);
        }
        for (tag, st) in [("fcfs", &pt.fcfs), ("backfill", &pt.backfill)] {
            rows.push(vec![
                pt.p.to_string(),
                tag.into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                format!("{:.2}", st.mean_stretch),
                format!("{:.2}", st.p95_stretch),
            ]);
        }
    }
    print_table(
        &[
            "p",
            "mode",
            "replans",
            "cold fb",
            "migrated",
            "pivots",
            "mean ms",
            "mean stretch",
            "p95 stretch",
        ],
        &rows,
    );

    match write_online_json(&points) {
        Ok(path) => println!("\nrecorded online sweep to {path}"),
        Err(e) => eprintln!("could not write BENCH_lp_online.json: {e}"),
    }
}

fn write_online_json(points: &[ScalePoint]) -> std::io::Result<String> {
    fn mode_json(st: &ModeStats) -> String {
        format!(
            "{{\"replans\": {}, \"cold_fallbacks\": {}, \"migrations\": {}, \
             \"pivots\": {}, \"mean_solve_ms\": {:.4}, \"mean_stretch\": {:.4}, \
             \"p95_stretch\": {:.4}}}",
            st.replans,
            st.cold_fallbacks,
            st.migrations,
            st.pivots,
            st.mean_solve_ms,
            st.mean_stretch,
            st.p95_stretch
        )
    }
    fn batch_json(st: &BatchStats) -> String {
        format!(
            "{{\"mean_stretch\": {:.4}, \"p95_stretch\": {:.4}}}",
            st.mean_stretch, st.p95_stretch
        )
    }
    let mut s = String::from("{\n  \"online_scale\": [\n");
    for (i, pt) in points.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"p\": {}, \"jobs\": {}, \"warm\": {}, \"cold\": {}, \
             \"fcfs\": {}, \"backfill\": {}}}",
            pt.p,
            pt.jobs,
            mode_json(&pt.warm),
            mode_json(&pt.cold),
            batch_json(&pt.fcfs),
            batch_json(&pt.backfill)
        );
        s.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    std::fs::write(BENCH_PATH, s)?;
    Ok("BENCH_lp_online.json".into())
}

/// `online-smoke`: the small deterministic CI guard for the session-edit
/// path. A 12-worker pool, 20 heavy-tailed jobs, churn in both
/// directions; every shape edit must ride the migrated basis (zero cold
/// fallbacks), the warm and cold modes must execute the identical
/// schedule, and warm re-plans must pivot no more than cold ones. No
/// wall-clock asserts — timer noise at this size belongs to the gate,
/// not the smoke.
pub fn online_smoke() {
    banner(
        "online-smoke",
        "session-edit guard — churn re-plans stay warm, schedules agree with cold",
    );
    let p = 12;
    let mut rng = StdRng::seed_from_u64(0x0e11e + p as u64);
    let pool = WorkerPool::random(&mut rng, p);
    let cfg = OnlineConfig {
        njobs: 20,
        ..online_cfg(p, 0xca11 + p as u64)
    };
    let trace = OnlineTrace::generate(&cfg);

    let mut warm_sess: SolveSession<f64, MasterSlave> =
        SolveSession::new(MasterSlave::new(NodeId(0)));
    let warm = simulate_online(&mut warm_sess, &pool, &cfg, &trace, ReplanMode::WarmEdits)
        .expect("warm online run");
    let mut cold_sess: SolveSession<f64, MasterSlave> =
        SolveSession::new(MasterSlave::new(NodeId(0)));
    let cold = simulate_online(
        &mut cold_sess,
        &pool,
        &cfg,
        &trace,
        ReplanMode::ColdPerEvent,
    )
    .expect("cold online run");

    assert_eq!(
        warm.cold_fallbacks, 0,
        "a shape edit fell back to a cold solve"
    );
    assert!(warm.migrations > 0, "no re-plan migrated the basis");
    assert!(
        warm.replans.iter().any(|r| r.arrival) && warm.replans.iter().any(|r| !r.arrival),
        "trace exercised only one churn direction"
    );
    for (a, b) in warm.jobs.iter().zip(&cold.jobs) {
        assert_eq!(a.finish, b.finish, "warm/cold job timelines diverge");
    }
    assert!(
        warm.total_iterations() <= cold.total_iterations(),
        "warm re-plans pivot more than cold ({} vs {})",
        warm.total_iterations(),
        cold.total_iterations()
    );
    print_table(
        &[
            "mode",
            "replans",
            "cold fb",
            "migrated",
            "pivots",
            "mean stretch",
        ],
        &[
            vec![
                "warm-edits".into(),
                warm.replans.len().to_string(),
                warm.cold_fallbacks.to_string(),
                warm.migrations.to_string(),
                warm.total_iterations().to_string(),
                format!("{:.2}", warm.mean_stretch()),
            ],
            vec![
                "cold/event".into(),
                cold.replans.len().to_string(),
                cold.cold_fallbacks.to_string(),
                cold.migrations.to_string(),
                cold.total_iterations().to_string(),
                format!("{:.2}", cold.mean_stretch()),
            ],
        ],
    );
    println!(
        "every churn re-plan rode the migrated basis; warm and cold schedules agree \
         (asserted; failures panic CI)."
    );
}

/// The `bench-check` slice for `BENCH_lp_online.json`: replays every
/// recorded pool size and fails if the fresh **warm/cold mean re-plan
/// wall-clock ratio** regresses past 2x the committed one (capped at 1.0
/// — warm must at minimum still beat cold), or if any shape edit falls
/// back to a cold solve (deterministic, no headroom needed; asserted
/// inside [`run_point`]).
pub fn online_check() {
    let committed = std::fs::read_to_string(BENCH_PATH)
        .unwrap_or_else(|e| panic!("cannot read committed BENCH_lp_online.json: {e}"));
    let doc = serde_json::parse(&committed)
        .unwrap_or_else(|e| panic!("committed BENCH_lp_online.json is not valid JSON: {e}"));
    let points = crate::warm::json_field(&doc, "online_scale")
        .and_then(crate::warm::json_array)
        .expect("BENCH_lp_online.json: missing `online_scale` array");
    assert!(!points.is_empty(), "committed file records no points");

    let mut rows = Vec::new();
    let mut regressed = false;
    for rec in points {
        let p = crate::warm::json_field(rec, "p")
            .and_then(crate::warm::json_f64)
            .expect("point without `p`") as usize;
        let ms = |side: &str| {
            crate::warm::json_field(rec, side)
                .and_then(|s| crate::warm::json_field(s, "mean_solve_ms"))
                .and_then(crate::warm::json_f64)
                .unwrap_or_else(|| panic!("point without `{side}.mean_solve_ms`"))
        };
        let committed_ratio = ms("warm") / ms("cold").max(1e-9);

        // Fresh replay; run_point asserts zero cold fallbacks and the
        // strict warm-beats-cold wall-clock claim internally.
        let fresh = run_point(p);
        let fresh_ratio = fresh.warm.mean_solve_ms / fresh.cold.mean_solve_ms.max(1e-9);
        // 2x headroom on the ratio of ratios (machine speed cancels: warm
        // and cold re-plans run back to back on the same box), a 0.10
        // absolute floor against sub-millisecond timer noise, and a hard
        // 1.0 cap: whatever the committed advantage, warm must still win.
        let limit = (committed_ratio * 2.0).clamp(0.10, 1.0);
        let ok = fresh_ratio <= limit;
        regressed |= !ok;
        rows.push(vec![
            p.to_string(),
            format!("{committed_ratio:.3}"),
            format!("{fresh_ratio:.3}"),
            format!("{limit:.3}"),
            fresh.warm.cold_fallbacks.to_string(),
            if ok { "ok".into() } else { "REGRESSED".into() },
        ]);
    }
    print_table(
        &[
            "p",
            "committed ms ratio",
            "fresh ms ratio",
            "limit",
            "cold fb",
            "verdict",
        ],
        &rows,
    );
    assert!(
        !regressed,
        "online warm/cold mean re-plan wall-clock ratio regressed past the committed \
         BENCH_lp_online.json"
    );
    println!(
        "fresh online warm/cold wall-clock ratio within 2x of the committed record at every \
         pool size, zero cold fallbacks."
    );
}
