//! LP kernel scaling (§3's "polynomial in |V| + |E|" claim): SSMS solve
//! time on random connected platforms — exact rational vs f64 backend,
//! and dense-tableau vs sparse-revised-simplex kernel on the f64 side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ss_core::master_slave::{self, PortModel};
use ss_lp::KernelChoice;
use ss_platform::topo;

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssms_lp");
    group.sample_size(10);
    for p in [4usize, 8, 12, 16] {
        let mut rng = StdRng::seed_from_u64(p as u64);
        let (g, m) = topo::random_connected(&mut rng, p, 0.25, &topo::ParamRange::default());
        let (prob, _) = master_slave::build(&g, m, &PortModel::FullOverlapOnePort);
        group.bench_with_input(BenchmarkId::new("exact", p), &prob, |b, prob| {
            b.iter(|| prob.solve_exact().unwrap())
        });
        group.bench_with_input(BenchmarkId::new("f64_dense", p), &prob, |b, prob| {
            b.iter(|| prob.solve_kernel::<f64>(KernelChoice::Dense).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("f64_sparse", p), &prob, |b, prob| {
            b.iter(|| prob.solve_kernel::<f64>(KernelChoice::Sparse).unwrap())
        });
    }
    group.finish();
    // Beyond the exact backend's comfort zone, pair the two f64 kernels
    // only — the regime the sparse revised simplex was built for.
    let mut group = c.benchmark_group("ssms_lp_large");
    group.sample_size(10);
    for p in [32usize, 48] {
        let mut rng = StdRng::seed_from_u64(p as u64);
        let (g, m) = topo::random_connected(&mut rng, p, 0.25, &topo::ParamRange::default());
        let (prob, _) = master_slave::build(&g, m, &PortModel::FullOverlapOnePort);
        group.bench_with_input(BenchmarkId::new("f64_dense", p), &prob, |b, prob| {
            b.iter(|| prob.solve_kernel::<f64>(KernelChoice::Dense).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("f64_sparse", p), &prob, |b, prob| {
            b.iter(|| prob.solve_kernel::<f64>(KernelChoice::Sparse).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lp);
criterion_main!(benches);
