//! One bench per steady-state formulation: end-to-end build + exact solve
//! on fixed reference platforms (the per-experiment cost the `repro`
//! harness pays).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ss_core::multicast::EdgeCoupling;
use ss_core::{all_to_all, broadcast, dag, master_slave, multicast, reduce, scatter};
use ss_num::Ratio;
use ss_platform::{paper, topo};

fn bench_formulations(c: &mut Criterion) {
    let (fig1, m1) = paper::fig1();
    let (fig2, src2, targets2) = paper::fig2_multicast();
    let mut rng = StdRng::seed_from_u64(9);
    let (g5, r5) = topo::random_connected(&mut rng, 5, 0.4, &topo::ParamRange::default());

    let mut group = c.benchmark_group("formulations");
    group.sample_size(10);
    group.bench_function("ssms_fig1", |b| b.iter(|| master_slave::solve(&fig1, m1).unwrap()));
    group.bench_function("scatter_fig2_targets", |b| {
        b.iter(|| scatter::solve(&fig2, src2, &targets2).unwrap())
    });
    group.bench_function("multicast_max_fig2", |b| {
        b.iter(|| multicast::solve(&fig2, src2, &targets2, EdgeCoupling::Max).unwrap())
    });
    group.bench_function("broadcast_p5", |b| b.iter(|| broadcast::solve(&g5, r5).unwrap()));
    group.bench_function("reduce_p5", |b| b.iter(|| reduce::solve(&g5, r5).unwrap()));
    group.bench_function("all_to_all_p5", |b| b.iter(|| all_to_all::solve(&g5).unwrap()));
    group.bench_function("dag_diamond_p5", |b| {
        let mut tg = dag::TaskGraph::diamond();
        let input = dag::TaskId(0);
        tg.pin_task(input, r5);
        let _ = Ratio::one();
        b.iter(|| dag::solve(&g5, &tg).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_formulations);
criterion_main!(benches);
