//! One bench per steady-state formulation: end-to-end build + solve on
//! fixed reference platforms (the per-experiment cost the `repro` harness
//! pays), with an **exact-vs-f64 backend pairing per formulation** so the
//! speedup of the fast path is a recorded, regenerable number.
//!
//! Results are written to `BENCH_lp_backends.json` at the workspace root
//! (mean/min/max nanoseconds per solve, per backend).

use criterion::{criterion_group, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ss_core::engine::Formulation;
use ss_core::multicast::EdgeCoupling;
use ss_core::{all_to_all, broadcast, dag, master_slave, multicast, reduce, scatter};
use ss_lp::KernelChoice;
use ss_num::Ratio;
use ss_platform::{paper, topo};

fn bench_formulations(c: &mut Criterion) {
    let (fig1, m1) = paper::fig1();
    let (fig2, src2, targets2) = paper::fig2_multicast();
    let mut rng = StdRng::seed_from_u64(9);
    let (g5, r5) = topo::random_connected(&mut rng, 5, 0.4, &topo::ParamRange::default());

    let mut group = c.benchmark_group("formulations");
    group.sample_size(10);
    group.bench_function("ssms_fig1", |b| {
        b.iter(|| master_slave::solve(&fig1, m1).unwrap())
    });
    group.bench_function("scatter_fig2_targets", |b| {
        b.iter(|| scatter::solve(&fig2, src2, &targets2).unwrap())
    });
    group.bench_function("multicast_max_fig2", |b| {
        b.iter(|| multicast::solve(&fig2, src2, &targets2, EdgeCoupling::Max).unwrap())
    });
    group.bench_function("broadcast_p5", |b| {
        b.iter(|| broadcast::solve(&g5, r5).unwrap())
    });
    group.bench_function("reduce_p5", |b| b.iter(|| reduce::solve(&g5, r5).unwrap()));
    group.bench_function("all_to_all_p5", |b| {
        b.iter(|| all_to_all::solve(&g5).unwrap())
    });
    group.bench_function("dag_diamond_p5", |b| {
        let mut tg = dag::TaskGraph::diamond();
        let input = dag::TaskId(0);
        tg.pin_task(input, r5);
        let _ = Ratio::one();
        b.iter(|| dag::solve(&g5, &tg).unwrap())
    });
    group.finish();
}

/// Exact vs f64 on an identical formulation instance, for all eight
/// formulations, on a common 8-node random platform (fig2 for multicast so
/// the max coupling has structure to share).
fn bench_backends(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(41);
    let (g, root) = topo::random_connected(&mut rng, 8, 0.3, &topo::ParamRange::default());
    let targets = topo::pick_targets(&mut rng, &g, root, 3);
    let (fig2, src2, targets2) = paper::fig2_multicast();
    let mut tg = dag::TaskGraph::diamond();
    tg.pin_task(dag::TaskId(0), root);

    let mut group = c.benchmark_group("lp_backends");
    group.sample_size(10);

    group.bench_function("master_slave/exact", |b| {
        b.iter(|| master_slave::solve(&g, root).unwrap())
    });
    group.bench_function("master_slave/f64", |b| {
        b.iter(|| master_slave::solve_approx(&g, root).unwrap())
    });

    group.bench_function("scatter/exact", |b| {
        b.iter(|| scatter::solve(&g, root, &targets).unwrap())
    });
    group.bench_function("scatter/f64", |b| {
        b.iter(|| scatter::solve_approx(&g, root, &targets).unwrap())
    });

    group.bench_function("multicast_sum/exact", |b| {
        b.iter(|| multicast::solve(&fig2, src2, &targets2, EdgeCoupling::Sum).unwrap())
    });
    group.bench_function("multicast_sum/f64", |b| {
        b.iter(|| multicast::solve_approx(&fig2, src2, &targets2, EdgeCoupling::Sum).unwrap())
    });

    group.bench_function("multicast_max/exact", |b| {
        b.iter(|| multicast::solve(&fig2, src2, &targets2, EdgeCoupling::Max).unwrap())
    });
    group.bench_function("multicast_max/f64", |b| {
        b.iter(|| multicast::solve_approx(&fig2, src2, &targets2, EdgeCoupling::Max).unwrap())
    });

    group.bench_function("broadcast/exact", |b| {
        b.iter(|| broadcast::solve(&g, root).unwrap())
    });
    group.bench_function("broadcast/f64", |b| {
        b.iter(|| broadcast::solve_approx(&g, root).unwrap())
    });

    group.bench_function("reduce/exact", |b| {
        b.iter(|| reduce::solve(&g, root).unwrap())
    });
    group.bench_function("reduce/f64", |b| {
        b.iter(|| reduce::solve_approx(&g, root).unwrap())
    });

    // All-to-all carries p(p-1) flow copies; a 6-node platform keeps the
    // exact side of the pairing affordable while preserving the contrast.
    let mut rng6 = StdRng::seed_from_u64(42);
    let (g6, _) = topo::random_connected(&mut rng6, 6, 0.3, &topo::ParamRange::default());
    group.bench_function("all_to_all/exact", |b| {
        b.iter(|| all_to_all::solve(&g6).unwrap())
    });
    group.bench_function("all_to_all/f64", |b| {
        b.iter(|| all_to_all::solve_approx(&g6).unwrap())
    });

    group.bench_function("dag/exact", |b| b.iter(|| dag::solve(&g, &tg).unwrap()));
    group.bench_function("dag/f64", |b| {
        b.iter(|| dag::solve_approx(&g, &tg).unwrap())
    });

    group.finish();
}

/// Dense tableau vs sparse revised simplex on identical `f64` instances:
/// the kernel pairing per formulation, recorded alongside the backend
/// pairing (the `repro -- lp-scale` sweep additionally writes its own
/// machine-readable copy to `BENCH_lp_sparse.json`).
fn bench_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(41);
    let (g, root) = topo::random_connected(&mut rng, 8, 0.3, &topo::ParamRange::default());
    let mut tg = dag::TaskGraph::diamond();
    tg.pin_task(dag::TaskId(0), root);

    let mut group = c.benchmark_group("lp_kernels");
    group.sample_size(10);

    let ms = master_slave::MasterSlave::new(root);
    let (ms_prob, _) = ms.build(&g).unwrap();
    group.bench_function("master_slave/dense", |b| {
        b.iter(|| ms_prob.solve_kernel::<f64>(KernelChoice::Dense).unwrap())
    });
    group.bench_function("master_slave/sparse", |b| {
        b.iter(|| ms_prob.solve_kernel::<f64>(KernelChoice::Sparse).unwrap())
    });

    let a2a = all_to_all::AllToAll::new();
    let (a2a_prob, _) = a2a.build(&g).unwrap();
    group.bench_function("all_to_all/dense", |b| {
        b.iter(|| a2a_prob.solve_kernel::<f64>(KernelChoice::Dense).unwrap())
    });
    group.bench_function("all_to_all/sparse", |b| {
        b.iter(|| a2a_prob.solve_kernel::<f64>(KernelChoice::Sparse).unwrap())
    });

    let dagf = dag::DagCollection { dag: &tg };
    let (dag_prob, _) = dagf.build(&g).unwrap();
    group.bench_function("dag/dense", |b| {
        b.iter(|| dag_prob.solve_kernel::<f64>(KernelChoice::Dense).unwrap())
    });
    group.bench_function("dag/sparse", |b| {
        b.iter(|| dag_prob.solve_kernel::<f64>(KernelChoice::Sparse).unwrap())
    });

    let div = ss_core::divisible::Divisible::new(root);
    let (div_prob, _) = div.build(&g).unwrap();
    group.bench_function("divisible/dense", |b| {
        b.iter(|| div_prob.solve_kernel::<f64>(KernelChoice::Dense).unwrap())
    });
    group.bench_function("divisible/sparse", |b| {
        b.iter(|| div_prob.solve_kernel::<f64>(KernelChoice::Sparse).unwrap())
    });

    // Sanity-anchor the pairing itself: both kernels agree on each
    // instance (the bench must never record a speedup for a wrong answer).
    for prob in [&ms_prob, &a2a_prob, &dag_prob, &div_prob] {
        let d = prob.solve_kernel::<f64>(KernelChoice::Dense).unwrap();
        let s = prob.solve_kernel::<f64>(KernelChoice::Sparse).unwrap();
        assert!((d.objective() - s.objective()).abs() <= 1e-6 * (1.0 + d.objective().abs()));
    }
    group.finish();
}

criterion_group!(benches, bench_formulations, bench_backends, bench_kernels);

fn main() {
    let mut c = Criterion::default();
    benches(&mut c);
    c.final_summary();
    // Record the backend pairing next to the repo's other experiment
    // artifacts (workspace root, two levels up from crates/bench).
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lp_backends.json");
    match c.write_json_summary(out) {
        Ok(()) => println!("\nrecorded backend results to BENCH_lp_backends.json"),
        Err(e) => eprintln!("\ncould not write BENCH_lp_backends.json: {e}"),
    }
}
