//! §4.1 weighted bipartite edge-coloring decomposition scaling, plus the
//! §5.1.1 greedy shared-port alternative.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ss_num::BigInt;
use ss_platform::topo;
use ss_schedule::coloring::{decompose, greedy_shared_port_schedule};

fn bench_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge_coloring");
    group.sample_size(20);
    for p in [8usize, 16, 32] {
        let mut rng = StdRng::seed_from_u64(p as u64);
        let (g, _) = topo::random_connected(&mut rng, p, 0.3, &topo::ParamRange::default());
        let busy: Vec<BigInt> = (0..g.num_edges())
            .map(|_| BigInt::from(rng.gen_range(0..100u32)))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("bipartite", p),
            &(&g, &busy),
            |b, (g, busy)| b.iter(|| decompose(g, busy)),
        );
        group.bench_with_input(
            BenchmarkId::new("greedy_shared", p),
            &(&g, &busy),
            |b, (g, busy)| b.iter(|| greedy_shared_port_schedule(g, busy)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_coloring);
criterion_main!(benches);
