//! Simulator kernels: periodic execution and the exact-time event queue.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ss_core::master_slave;
use ss_num::Ratio;
use ss_platform::paper;
use ss_schedule::reconstruct_master_slave;
use ss_sim::{simulate_master_slave, EventQueue};

fn bench_periodic(c: &mut Criterion) {
    let (g, m) = paper::fig1();
    let sol = master_slave::solve(&g, m).unwrap();
    let sched = reconstruct_master_slave(&g, &sol);
    let mut group = c.benchmark_group("periodic_executor");
    for periods in [10usize, 100, 1000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(periods),
            &periods,
            |b, &periods| b.iter(|| simulate_master_slave(&g, m, &sched, periods)),
        );
    }
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000i64 {
                q.push(Ratio::new((i * 7919) % 10_000, 17), i);
            }
            let mut acc = 0i64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            acc
        })
    });
}

criterion_group!(benches, bench_periodic, bench_event_queue);
criterion_main!(benches);
