//! Worker shards: batch-drained request queues and the per-tenant state
//! machine (resident session ↔ parked warm snapshot).
//!
//! Each worker owns one [`ShardQueue`] and all tenants hashing to its
//! shard. The queue replaces the old one-blocking-`recv`-per-request
//! loop: a worker wakes up, drains up to `batch` requests under one lock
//! acquisition, and serves them in order. Enqueue-time **coalescing**
//! merges queued parameter updates for the same tenant (latest drift
//! wins, every merged caller shares the single re-plan) — sound because
//! a [`ParamScale`] is absolute relative to the registered base
//! platform, so only the newest one matters.

use crate::protocol::ResponseBody;
use crate::{persist, CertifiedRate, RateReport, Replan, ServiceError, SnapshotReport};
use ss_core::drift::ParamScale;
use ss_core::master_slave::MasterSlave;
use ss_core::session::{SessionEvent, SolveSession};
use ss_core::WarmOutcome;
use ss_lp::{KernelChoice, WarmStart};
use ss_platform::{NodeId, Platform, PlatformSpec};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};

/// Weight of the newest solve in the per-tenant EWMA the deadline check
/// consults.
const EWMA_ALPHA: f64 = 0.3;

/// A finished socket-path response, routed back to the reactor thread.
pub(crate) struct Completion {
    pub conn: u64,
    pub seq: u64,
    pub body: ResponseBody,
}

/// Where a worker sends one request's answer.
pub(crate) enum Replier<T> {
    /// In-process caller blocked on its own channel.
    Sync(Sender<Result<T, ServiceError>>),
    /// Socket caller: the reactor writes the frame.
    Socket {
        conn: u64,
        seq: u64,
        done: Sender<Completion>,
    },
}

impl<T: Clone> Replier<T>
where
    T: Into<ResponseBody>,
{
    fn deliver(self, out: &Result<T, ServiceError>) {
        match self {
            Replier::Sync(tx) => {
                let _ = tx.send(out.clone());
            }
            Replier::Socket { conn, seq, done } => {
                let body = match out {
                    Ok(v) => v.clone().into(),
                    Err(e) => ResponseBody::Error(e.clone()),
                };
                let _ = done.send(Completion { conn, seq, body });
            }
        }
    }
}

/// Snapshot requests fan out to every worker; the socket path aggregates
/// per-worker counts here and answers once the last worker reports.
pub(crate) struct SnapshotFanout {
    pub remaining: usize,
    pub persisted: usize,
    pub error: Option<ServiceError>,
    pub conn: u64,
    pub seq: u64,
    pub done: Sender<Completion>,
}

/// Reply route of a snapshot request.
pub(crate) enum SnapshotReply {
    /// In-process caller; it fans out itself and sums the counts.
    Sync(Sender<Result<SnapshotReport, ServiceError>>),
    /// Socket caller; shared aggregate across all workers.
    Fanout(Arc<Mutex<SnapshotFanout>>),
}

/// One unit of work for a worker.
pub(crate) enum Request {
    Register {
        tenant: String,
        platform: Platform,
        master: NodeId,
        reply: Replier<Replan>,
    },
    Update {
        tenant: String,
        scale: ParamScale,
        /// All callers whose updates were coalesced into this one.
        replies: Vec<Replier<Replan>>,
    },
    Rate {
        tenant: String,
        reply: Replier<RateReport>,
    },
    Certify {
        tenant: String,
        reply: Replier<CertifiedRate>,
    },
    Snapshot {
        reply: SnapshotReply,
    },
}

struct QueueState {
    deque: VecDeque<Request>,
    open: bool,
}

/// A worker's request queue: multi-producer, single batch-draining
/// consumer, with enqueue-time update coalescing.
pub(crate) struct ShardQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
}

impl ShardQueue {
    pub fn new() -> Arc<ShardQueue> {
        Arc::new(ShardQueue {
            state: Mutex::new(QueueState {
                deque: VecDeque::new(),
                open: true,
            }),
            cv: Condvar::new(),
        })
    }

    /// Enqueue a request. With `coalesce`, an update for a tenant that
    /// already has a queued update merges into it — the pending entry
    /// keeps its (earlier) queue position, takes the newer drift, and
    /// collects the new caller's replier. Returns the request back when
    /// the queue is closed so the caller can fail its repliers.
    pub fn push(&self, req: Request, coalesce: bool) -> Result<(), Box<Request>> {
        let mut st = self.state.lock().expect("shard queue poisoned");
        if !st.open {
            return Err(Box::new(req));
        }
        if coalesce {
            if let Request::Update {
                tenant,
                scale,
                replies,
            } = req
            {
                for queued in st.deque.iter_mut() {
                    if let Request::Update {
                        tenant: qt,
                        scale: qs,
                        replies: qr,
                    } = queued
                    {
                        if *qt == tenant {
                            *qs = scale;
                            qr.extend(replies);
                            self.cv.notify_one();
                            return Ok(());
                        }
                    }
                }
                st.deque.push_back(Request::Update {
                    tenant,
                    scale,
                    replies,
                });
                self.cv.notify_one();
                return Ok(());
            }
        }
        st.deque.push_back(req);
        self.cv.notify_one();
        Ok(())
    }

    /// Block until work arrives, then drain up to `max` requests. `None`
    /// once the queue is closed and empty — the worker's exit signal.
    pub fn pop_batch(&self, max: usize) -> Option<Vec<Request>> {
        let mut st = self.state.lock().expect("shard queue poisoned");
        while st.deque.is_empty() {
            if !st.open {
                return None;
            }
            st = self.cv.wait(st).expect("shard queue poisoned");
        }
        let take = st.deque.len().min(max.max(1));
        Some(st.deque.drain(..take).collect())
    }

    /// Close the queue: producers get their requests back, the consumer
    /// drains what's left and exits.
    pub fn close(&self) {
        let mut st = self.state.lock().expect("shard queue poisoned");
        st.open = false;
        self.cv.notify_all();
    }

    #[cfg(test)]
    pub fn queued(&self) -> usize {
        self.state.lock().expect("shard queue poisoned").deque.len()
    }
}

/// Per-worker knobs, split off [`crate::ServiceConfig`].
pub(crate) struct WorkerConfig {
    pub kernel: KernelChoice,
    pub batch: usize,
    pub reuse_lowering: bool,
    pub deadline_ms: Option<f64>,
    pub max_resident: usize,
    pub persist_dir: Option<PathBuf>,
}

/// Service-level per-tenant counters. Unlike the session's own
/// [`SessionStats`](ss_core::session::SessionStats) these survive LRU
/// eviction and service restarts (they are journaled in the
/// [`TenantRecord`](crate::TenantRecord)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// Re-plan requests answered (register + updates; stale and
    /// coalesced replies included).
    pub served: usize,
    /// LP solves actually performed.
    pub lp_solves: usize,
    /// LP solves per warm path.
    pub warm: usize,
    /// See [`WarmOutcome::DualRepaired`].
    pub dual_repaired: usize,
    /// See [`WarmOutcome::Repaired`].
    pub repaired: usize,
    /// Hint-less cold solves.
    pub cold: usize,
    /// Solves that had a hint but fell back cold.
    pub cold_fallback: usize,
    /// Total simplex pivots.
    pub iterations: usize,
    /// Requests answered with the last good plan under a blown deadline.
    pub stale_served: usize,
    /// Requests absorbed into another request's re-plan by coalescing.
    pub coalesced: usize,
    /// Solves that reused the cached symbolic lowering.
    pub lowering_reuses: usize,
}

impl TenantCounters {
    fn record_solve(&mut self, outcome: WarmOutcome, iterations: usize, lowering_reused: bool) {
        self.lp_solves += 1;
        self.iterations += iterations;
        if lowering_reused {
            self.lowering_reuses += 1;
        }
        match outcome {
            WarmOutcome::Warm => self.warm += 1,
            WarmOutcome::DualRepaired => self.dual_repaired += 1,
            WarmOutcome::Repaired => self.repaired += 1,
            WarmOutcome::Cold => self.cold += 1,
            WarmOutcome::ColdFallback => self.cold_fallback += 1,
        }
    }

    /// Fraction of LP solves that reused a warm basis.
    pub fn warm_fraction(&self) -> f64 {
        if self.lp_solves == 0 {
            return 0.0;
        }
        (self.warm + self.dual_repaired + self.repaired) as f64 / self.lp_solves as f64
    }
}

enum TenantState {
    /// Hot: live session (warm snapshot and cached lowering inside).
    Resident(Box<SolveSession<f64, MasterSlave>>),
    /// Parked by LRU eviction or loaded from disk: only the scalar-free
    /// warm snapshot survives; the next request revives the session.
    Parked(Option<WarmStart>),
}

struct TenantSlot {
    base: Platform,
    master: NodeId,
    scale: ParamScale,
    current: Platform,
    throughput: f64,
    counters: TenantCounters,
    last_outcome: WarmOutcome,
    last_factor_ms: f64,
    last_factor_nnz: usize,
    last_fill_ratio: f64,
    /// EWMA of recent solve wall-clock; what the deadline check consults.
    ewma_ms: f64,
    last_used: u64,
    state: TenantState,
}

impl TenantSlot {
    fn warm_snapshot(&self) -> Option<WarmStart> {
        match &self.state {
            TenantState::Resident(sess) => sess.warm_state().cloned(),
            TenantState::Parked(w) => w.clone(),
        }
    }

    fn record(&self, tenant: &str) -> persist::TenantRecord {
        persist::TenantRecord {
            tenant: tenant.to_string(),
            platform: PlatformSpec::from_platform(&self.base),
            master: self.master.index(),
            scale: self.scale.clone(),
            throughput: self.throughput,
            warm: self.warm_snapshot(),
            counters: self.counters,
        }
    }
}

struct Shard {
    cfg: WorkerConfig,
    tenants: HashMap<String, TenantSlot>,
    tick: u64,
}

pub(crate) fn worker_loop(
    q: Arc<ShardQueue>,
    cfg: WorkerConfig,
    preloaded: Vec<persist::TenantRecord>,
) {
    let mut shard = Shard {
        cfg,
        tenants: HashMap::new(),
        tick: 0,
    };
    for rec in preloaded {
        shard.load_record(rec);
    }
    let batch = shard.cfg.batch;
    while let Some(reqs) = q.pop_batch(batch) {
        for req in reqs {
            shard.handle(req);
        }
    }
    // Graceful shutdown: journal every tenant so a restart resumes warm.
    shard.persist_all();
}

impl Shard {
    fn load_record(&mut self, rec: persist::TenantRecord) {
        let base = match rec.platform.to_platform() {
            Ok(g) => g,
            Err(_) => return, // corrupt record: skip, re-register later
        };
        if rec.master >= base.num_nodes()
            || rec.scale.w_mult.len() != base.num_nodes()
            || rec.scale.c_mult.len() != base.num_edges()
        {
            return;
        }
        let current = rec.scale.apply(&base);
        self.tenants.insert(
            rec.tenant,
            TenantSlot {
                base,
                master: NodeId(rec.master),
                scale: rec.scale,
                current,
                throughput: rec.throughput,
                counters: rec.counters,
                last_outcome: WarmOutcome::Warm,
                last_factor_ms: 0.0,
                last_factor_nnz: 0,
                last_fill_ratio: 0.0,
                ewma_ms: 0.0,
                last_used: 0,
                state: TenantState::Parked(rec.warm),
            },
        );
    }

    fn handle(&mut self, req: Request) {
        match req {
            Request::Register {
                tenant,
                platform,
                master,
                reply,
            } => {
                let out = self.register(&tenant, platform, master);
                reply.deliver(&out);
            }
            Request::Update {
                tenant,
                scale,
                replies,
            } => self.update(&tenant, scale, replies),
            Request::Rate { tenant, reply } => {
                let out = self.rate(&tenant);
                reply.deliver(&out);
            }
            Request::Certify { tenant, reply } => {
                let out = self.certify(&tenant);
                reply.deliver(&out);
            }
            Request::Snapshot { reply } => {
                let out = self.snapshot();
                match reply {
                    SnapshotReply::Sync(tx) => {
                        let _ = tx.send(out);
                    }
                    SnapshotReply::Fanout(agg) => {
                        let mut agg = agg.lock().expect("snapshot fanout poisoned");
                        match out {
                            Ok(r) => agg.persisted += r.persisted,
                            Err(e) => agg.error = Some(e),
                        }
                        agg.remaining -= 1;
                        if agg.remaining == 0 {
                            let body = match agg.error.take() {
                                Some(e) => ResponseBody::Error(e),
                                None => ResponseBody::Snapshot(SnapshotReport {
                                    persisted: agg.persisted,
                                }),
                            };
                            let _ = agg.done.send(Completion {
                                conn: agg.conn,
                                seq: agg.seq,
                                body,
                            });
                        }
                    }
                }
            }
        }
    }

    fn register(
        &mut self,
        tenant: &str,
        platform: Platform,
        master: NodeId,
    ) -> Result<Replan, ServiceError> {
        if self.tenants.contains_key(tenant) {
            return Err(ServiceError::DuplicateTenant(tenant.to_string()));
        }
        if master.index() >= platform.num_nodes() {
            return Err(ServiceError::Solve(format!(
                "master node {} out of range for a {}-node platform",
                master.index(),
                platform.num_nodes()
            )));
        }
        let scale = ParamScale::nominal(&platform);
        let mut slot = TenantSlot {
            current: platform.clone(),
            base: platform,
            master,
            scale,
            throughput: 0.0,
            counters: TenantCounters::default(),
            last_outcome: WarmOutcome::Cold,
            last_factor_ms: 0.0,
            last_factor_nnz: 0,
            last_fill_ratio: 0.0,
            ewma_ms: 0.0,
            last_used: 0,
            state: TenantState::Parked(None),
        };
        let plan = solve_slot(&self.cfg, tenant, &mut slot, 1)?;
        slot.counters.served += 1;
        self.tenants.insert(tenant.to_string(), slot);
        self.persist_one(tenant);
        self.touch_and_evict(tenant);
        Ok(plan)
    }

    fn update(&mut self, tenant: &str, scale: ParamScale, replies: Vec<Replier<Replan>>) {
        let cfg_deadline = self.cfg.deadline_ms;
        let Some(slot) = self.tenants.get_mut(tenant) else {
            let err = Err(ServiceError::UnknownTenant(tenant.to_string()));
            for r in replies {
                r.deliver(&err);
            }
            return;
        };
        if scale.w_mult.len() != slot.base.num_nodes()
            || scale.c_mult.len() != slot.base.num_edges()
        {
            let err = Err(ServiceError::Solve(format!(
                "drift scale shape mismatch for `{tenant}`: {}×{} factors on a {}-node \
                 {}-edge platform",
                scale.w_mult.len(),
                scale.c_mult.len(),
                slot.base.num_nodes(),
                slot.base.num_edges()
            )));
            for r in replies {
                r.deliver(&err);
            }
            return;
        }
        slot.current = scale.apply(&slot.base);
        slot.scale = scale;

        // Deadline blown: answer every caller with the last good plan
        // now, then finish the fresh solve off their critical path.
        let serve_stale =
            matches!(cfg_deadline, Some(d) if slot.counters.lp_solves > 0 && slot.ewma_ms > d);
        if serve_stale {
            let stale = Replan {
                tenant: tenant.to_string(),
                throughput: slot.throughput,
                outcome: slot.last_outcome,
                iterations: 0,
                solve_ms: 0.0,
                priced_columns: 0,
                pricing_ms: 0.0,
                factor_ms: slot.last_factor_ms,
                factor_nnz: slot.last_factor_nnz,
                fill_ratio: slot.last_fill_ratio,
                stale: true,
                coalesced: replies.len(),
            };
            slot.counters.served += replies.len();
            slot.counters.stale_served += replies.len();
            slot.counters.coalesced += replies.len().saturating_sub(1);
            let out = Ok(stale);
            for r in replies {
                r.deliver(&out);
            }
            let _ = solve_slot(&self.cfg, tenant, slot, 1);
            self.persist_one(tenant);
            self.touch_and_evict(tenant);
            return;
        }

        let coalesced = replies.len();
        let out = solve_slot(&self.cfg, tenant, slot, coalesced);
        if out.is_ok() {
            slot.counters.served += coalesced;
            slot.counters.coalesced += coalesced.saturating_sub(1);
        }
        for r in replies {
            r.deliver(&out);
        }
        self.persist_one(tenant);
        self.touch_and_evict(tenant);
    }

    fn rate(&mut self, tenant: &str) -> Result<RateReport, ServiceError> {
        let slot = self
            .tenants
            .get(tenant)
            .ok_or_else(|| ServiceError::UnknownTenant(tenant.to_string()))?;
        Ok(RateReport {
            tenant: tenant.to_string(),
            throughput: slot.throughput,
            solves: slot.counters.served,
            lp_solves: slot.counters.lp_solves,
            warm_fraction: slot.counters.warm_fraction(),
            dual_repaired: slot.counters.dual_repaired,
            stale_served: slot.counters.stale_served,
            coalesced: slot.counters.coalesced,
            resident: matches!(slot.state, TenantState::Resident(_)),
            last_fill_ratio: slot.last_fill_ratio,
            last_factor_nnz: slot.last_factor_nnz,
        })
    }

    fn certify(&mut self, tenant: &str) -> Result<CertifiedRate, ServiceError> {
        let kernel = self.cfg.kernel;
        let reuse = self.cfg.reuse_lowering;
        let Some(slot) = self.tenants.get_mut(tenant) else {
            return Err(ServiceError::UnknownTenant(tenant.to_string()));
        };
        revive(slot, kernel, reuse);
        let TenantState::Resident(sess) = &mut slot.state else {
            unreachable!("revive makes the slot resident")
        };
        let out = match sess.certify(&slot.current) {
            Err(e) => Err(ServiceError::Solve(e.to_string())),
            Ok(exact) => Ok(CertifiedRate {
                f64_gap: (exact.objective_f64() - slot.throughput).abs(),
                exact: exact.objective().clone(),
                tenant: tenant.to_string(),
            }),
        };
        self.persist_one(tenant);
        self.touch_and_evict(tenant);
        out
    }

    fn snapshot(&mut self) -> Result<SnapshotReport, ServiceError> {
        if self.cfg.persist_dir.is_none() {
            return Err(ServiceError::Solve(
                "snapshot requested but the service has no persist_dir".into(),
            ));
        }
        Ok(SnapshotReport {
            persisted: self.persist_all(),
        })
    }

    fn persist_one(&self, tenant: &str) {
        let Some(dir) = &self.cfg.persist_dir else {
            return;
        };
        if let Some(slot) = self.tenants.get(tenant) {
            if let Err(e) = persist::save(dir, &slot.record(tenant)) {
                eprintln!("ss-service: could not persist tenant `{tenant}`: {e}");
            }
        }
    }

    fn persist_all(&self) -> usize {
        let Some(dir) = &self.cfg.persist_dir else {
            return 0;
        };
        let mut n = 0;
        for (id, slot) in &self.tenants {
            match persist::save(dir, &slot.record(id)) {
                Ok(()) => n += 1,
                Err(e) => eprintln!("ss-service: could not persist tenant `{id}`: {e}"),
            }
        }
        n
    }
}

/// Run the tenant's LP (reviving a parked session first) and update the
/// slot's plan, telemetry mirrors and EWMA. A free function so callers
/// can hold the slot `&mut` out of the shard map while borrowing the
/// worker config.
fn solve_slot(
    cfg: &WorkerConfig,
    tenant: &str,
    slot: &mut TenantSlot,
    coalesced: usize,
) -> Result<Replan, ServiceError> {
    revive(slot, cfg.kernel, cfg.reuse_lowering);
    let TenantState::Resident(sess) = &mut slot.state else {
        unreachable!("revive makes the slot resident")
    };
    match sess.apply(SessionEvent::Drift(slot.scale.clone())) {
        Err(e) => Err(ServiceError::Solve(e.to_string())),
        Ok(s) => {
            let t = &s.telemetry;
            slot.throughput = s.activities.objective_f64();
            slot.last_outcome = t.outcome;
            slot.last_factor_ms = t.factor_ms;
            slot.last_factor_nnz = t.factor_nnz;
            slot.last_fill_ratio = t.fill_ratio;
            slot.ewma_ms = if slot.counters.lp_solves == 0 {
                t.solve_ms
            } else {
                (1.0 - EWMA_ALPHA) * slot.ewma_ms + EWMA_ALPHA * t.solve_ms
            };
            slot.counters
                .record_solve(t.outcome, t.iterations, t.lowering_reused);
            Ok(Replan {
                tenant: tenant.to_string(),
                throughput: slot.throughput,
                outcome: t.outcome,
                iterations: t.iterations,
                solve_ms: t.solve_ms,
                priced_columns: t.priced_columns,
                pricing_ms: t.pricing_ms,
                factor_ms: t.factor_ms,
                factor_nnz: t.factor_nnz,
                fill_ratio: t.fill_ratio,
                stale: false,
                coalesced,
            })
        }
    }
}

impl Shard {
    /// Park least-recently-used residents beyond the cap (warm snapshot
    /// retained so revival stays warm).
    fn touch_and_evict(&mut self, just_touched: &str) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(slot) = self.tenants.get_mut(just_touched) {
            slot.last_used = tick;
        }
        if self.cfg.max_resident == 0 {
            return;
        }
        loop {
            let resident = self
                .tenants
                .iter()
                .filter(|(_, s)| matches!(s.state, TenantState::Resident(_)))
                .count();
            if resident <= self.cfg.max_resident {
                return;
            }
            let victim = self
                .tenants
                .iter()
                .filter(|(id, s)| {
                    matches!(s.state, TenantState::Resident(_)) && id.as_str() != just_touched
                })
                .min_by_key(|(_, s)| s.last_used)
                .map(|(id, _)| id.clone());
            let Some(victim) = victim else { return };
            self.persist_one(&victim);
            if let Some(slot) = self.tenants.get_mut(&victim) {
                let warm = slot.warm_snapshot();
                slot.state = TenantState::Parked(warm);
            }
        }
    }
}

/// Rebuild a live session for a parked tenant, seeding it with the kept
/// warm snapshot so the first re-plan after revival is warm, not cold.
fn revive(slot: &mut TenantSlot, kernel: KernelChoice, reuse_lowering: bool) {
    if matches!(slot.state, TenantState::Resident(_)) {
        return;
    }
    let TenantState::Parked(warm) = &mut slot.state else {
        unreachable!()
    };
    let mut sess = SolveSession::with_kernel(MasterSlave::new(slot.master), kernel);
    sess.set_lowering_reuse(reuse_lowering);
    sess.set_base(slot.base.clone());
    if let Some(w) = warm.take() {
        sess.seed_warm(w);
    }
    slot.state = TenantState::Resident(Box::new(sess));
}
