//! Warm snapshot persistence: one JSON file per tenant.
//!
//! With `ServiceConfig::persist_dir` set, every successful re-plan (and
//! every eviction, certification and graceful shutdown) journals the
//! tenant's [`TenantRecord`] — platform spec, current drift, service
//! counters and the scalar-free [`WarmStart`] basis snapshot — to
//! `<dir>/<tenant>.json`. Writes go through a temp file + rename so a
//! kill mid-write leaves the previous record intact, and a restarted
//! [`Service`](crate::Service) pointing at the same directory reloads
//! every tenant **warm**: the first re-plan after restart seeds the new
//! session from the snapshot and skips phase 1 entirely (the
//! `service-scale` sweep asserts zero cold solves after a restart).
//!
//! Records are validated on load the same way network input is: the
//! platform spec is rebuilt through the graph invariants, drift vectors
//! must match the platform shape, and the snapshot's indices are checked
//! by `WarmStart`'s own deserializer. A record that fails validation is
//! skipped (the tenant just re-registers cold), never trusted.

use crate::worker::TenantCounters;
use serde::ser::SerializeStruct as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use ss_lp::WarmStart;
use ss_platform::PlatformSpec;
use ss_sim::dynamic::ParamScale;
use std::io;
use std::path::{Path, PathBuf};

/// Everything needed to revive a tenant warm after a restart.
#[derive(Clone, Debug)]
pub struct TenantRecord {
    /// Tenant id.
    pub tenant: String,
    /// The registered nominal platform.
    pub platform: PlatformSpec,
    /// Master node index.
    pub master: usize,
    /// Most recent drift (absolute, relative to `platform`).
    pub scale: ParamScale,
    /// Throughput of the last good plan.
    pub throughput: f64,
    /// Scalar-free warm basis snapshot of the last solve.
    pub warm: Option<WarmStart>,
    /// Lifetime service counters.
    pub counters: TenantCounters,
}

impl Serialize for TenantCounters {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("TenantCounters", 11)?;
        st.serialize_field("served", &self.served)?;
        st.serialize_field("lp_solves", &self.lp_solves)?;
        st.serialize_field("warm", &self.warm)?;
        st.serialize_field("dual_repaired", &self.dual_repaired)?;
        st.serialize_field("repaired", &self.repaired)?;
        st.serialize_field("cold", &self.cold)?;
        st.serialize_field("cold_fallback", &self.cold_fallback)?;
        st.serialize_field("iterations", &self.iterations)?;
        st.serialize_field("stale_served", &self.stale_served)?;
        st.serialize_field("coalesced", &self.coalesced)?;
        st.serialize_field("lowering_reuses", &self.lowering_reuses)?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for TenantCounters {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<TenantCounters, D::Error> {
        Ok(TenantCounters {
            served: usize::deserialize(d.clone().take_field("served")?)?,
            lp_solves: usize::deserialize(d.clone().take_field("lp_solves")?)?,
            warm: usize::deserialize(d.clone().take_field("warm")?)?,
            dual_repaired: usize::deserialize(d.clone().take_field("dual_repaired")?)?,
            repaired: usize::deserialize(d.clone().take_field("repaired")?)?,
            cold: usize::deserialize(d.clone().take_field("cold")?)?,
            cold_fallback: usize::deserialize(d.clone().take_field("cold_fallback")?)?,
            iterations: usize::deserialize(d.clone().take_field("iterations")?)?,
            stale_served: usize::deserialize(d.clone().take_field("stale_served")?)?,
            coalesced: usize::deserialize(d.clone().take_field("coalesced")?)?,
            lowering_reuses: usize::deserialize(d.take_field("lowering_reuses")?)?,
        })
    }
}

impl Serialize for TenantRecord {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("TenantRecord", 7)?;
        st.serialize_field("tenant", &self.tenant)?;
        st.serialize_field("platform", &self.platform)?;
        st.serialize_field("master", &self.master)?;
        st.serialize_field("scale", &self.scale)?;
        st.serialize_field("throughput", &self.throughput)?;
        st.serialize_field("warm", &self.warm)?;
        st.serialize_field("counters", &self.counters)?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for TenantRecord {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<TenantRecord, D::Error> {
        Ok(TenantRecord {
            tenant: String::deserialize(d.clone().take_field("tenant")?)?,
            platform: PlatformSpec::deserialize(d.clone().take_field("platform")?)?,
            master: usize::deserialize(d.clone().take_field("master")?)?,
            scale: ParamScale::deserialize(d.clone().take_field("scale")?)?,
            throughput: f64::deserialize(d.clone().take_field("throughput")?)?,
            warm: Option::<WarmStart>::deserialize(d.clone().take_field("warm")?)?,
            counters: TenantCounters::deserialize(d.take_field("counters")?)?,
        })
    }
}

/// Map a tenant id to a filesystem-safe file stem: alphanumerics, `-`,
/// `_` and `.` pass through, everything else is `%xx`-escaped (so
/// distinct ids cannot collide).
fn file_stem(tenant: &str) -> String {
    let mut out = String::with_capacity(tenant.len());
    for b in tenant.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' => out.push(b as char),
            other => {
                out.push('%');
                out.push_str(&format!("{other:02x}"));
            }
        }
    }
    out
}

/// Journal one tenant record atomically (temp file + rename).
pub fn save(dir: &Path, record: &TenantRecord) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let stem = file_stem(&record.tenant);
    let text = serde_json::to_string(record)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let tmp = dir.join(format!("{stem}.json.tmp"));
    let dst = dir.join(format!("{stem}.json"));
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, &dst)
}

/// Load every valid tenant record from `dir`. Unreadable or unparsable
/// files are skipped — a half-written record from a crashed process must
/// not keep the service from starting.
pub fn load_all(dir: &Path) -> Vec<TenantRecord> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut records = Vec::new();
    for entry in entries.flatten() {
        let path: PathBuf = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        match serde_json::from_str::<TenantRecord>(&text) {
            Ok(rec) => records.push(rec),
            Err(e) => eprintln!(
                "ss-service: skipping corrupt tenant record {}: {e}",
                path.display()
            ),
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_num::Ratio;

    #[test]
    fn tenant_records_round_trip_through_disk() {
        let dir = std::env::temp_dir().join(format!("ss-persist-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rec = TenantRecord {
            tenant: "acme/eu-west#1".into(), // exercises %xx escaping
            platform: PlatformSpec::default(),
            master: 0,
            scale: ParamScale {
                w_mult: vec![Ratio::new(3, 2)],
                c_mult: vec![],
            },
            throughput: 1.25,
            warm: Some(WarmStart::new(2, 5, 3, vec![0, 4], vec![false; 5])),
            counters: TenantCounters {
                served: 7,
                lp_solves: 5,
                warm: 3,
                dual_repaired: 1,
                repaired: 0,
                cold: 1,
                cold_fallback: 0,
                iterations: 42,
                stale_served: 2,
                coalesced: 2,
                lowering_reuses: 4,
            },
        };
        save(&dir, &rec).unwrap();
        let loaded = load_all(&dir);
        assert_eq!(loaded.len(), 1);
        let back = &loaded[0];
        assert_eq!(back.tenant, rec.tenant);
        assert_eq!(back.scale, rec.scale);
        assert_eq!(back.counters, rec.counters);
        assert_eq!(back.master, rec.master);
        assert!((back.throughput - rec.throughput).abs() < 1e-12);
        let w = back.warm.as_ref().unwrap();
        assert_eq!(w.basis(), &[0, 4]);
        assert_eq!(w.num_rows(), 2);

        // A corrupt record is skipped, not fatal.
        std::fs::write(dir.join("broken.json"), "{ not json").unwrap();
        assert_eq!(load_all(&dir).len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
