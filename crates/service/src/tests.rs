use super::*;
use crate::client::SocketClient;
use crate::worker::{Replier, Request, ShardQueue};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ss_lp::WarmStart;
use ss_num::Ratio;
use ss_platform::{topo, NodeId, Platform};
use ss_sim::dynamic::ParamScale;
use std::path::PathBuf;
use std::sync::mpsc::channel;

fn tenant_platform(seed: u64, p: usize) -> (Platform, NodeId) {
    let mut rng = StdRng::seed_from_u64(seed);
    topo::random_connected(&mut rng, p, 0.3, &topo::ParamRange::default())
}

fn mild_drift(g: &Platform, node: usize, num: i64, den: i64) -> ParamScale {
    ParamScale::nominal(g).with_node(NodeId(node % g.num_nodes()), Ratio::new(num, den))
}

/// A fresh scratch directory under the target-side temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ss-service-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn register_update_rate_certify_roundtrip() {
    let service = Service::spawn(ServiceConfig::default());
    let client = service.client();
    let (g, m) = tenant_platform(1, 8);

    let plan = client.register("acme", g.clone(), m).unwrap();
    assert!(plan.throughput > 0.0);
    assert_eq!(plan.outcome, WarmOutcome::Cold);
    assert!(!plan.stale);
    assert_eq!(plan.coalesced, 1);

    // A drift re-plan goes through the warm machinery, never a
    // hint-less cold solve.
    let re = client.update("acme", mild_drift(&g, 1, 3, 2)).unwrap();
    assert!(re.throughput > 0.0);
    assert_ne!(re.outcome, WarmOutcome::Cold);

    let rate = client.rate("acme").unwrap();
    assert_eq!(rate.solves, 2);
    assert_eq!(rate.lp_solves, 2);
    assert!((rate.throughput - re.throughput).abs() < 1e-12);

    // Exact checkpoint agrees with the fast plan.
    let cert = client.certify("acme").unwrap();
    assert!(cert.f64_gap < 1e-6, "gap {}", cert.f64_gap);
    assert!(cert.exact.is_positive());

    service.shutdown();
}

#[test]
fn unknown_and_duplicate_tenants_error() {
    let service = Service::spawn(ServiceConfig::builder().workers(1).build().unwrap());
    let client = service.client();
    assert_eq!(
        client.rate("ghost").unwrap_err(),
        ServiceError::UnknownTenant("ghost".into())
    );
    let (g, m) = tenant_platform(2, 6);
    client.register("dup", g.clone(), m).unwrap();
    assert_eq!(
        client.register("dup", g, m).unwrap_err(),
        ServiceError::DuplicateTenant("dup".into())
    );
}

#[test]
fn many_tenants_replan_concurrently_and_stay_warm() {
    let service = Service::spawn(ServiceConfig::builder().workers(4).build().unwrap());
    let client = service.client();
    let tenants: Vec<(String, Platform, NodeId)> = (0..8)
        .map(|i| {
            let (g, m) = tenant_platform(100 + i, 6 + (i as usize % 3) * 2);
            (format!("tenant-{i}"), g, m)
        })
        .collect();
    for (id, g, m) in &tenants {
        client.register(id.clone(), g.clone(), *m).unwrap();
    }
    // Concurrent drift updates from one client clone per tenant.
    std::thread::scope(|s| {
        for (id, g, _) in &tenants {
            let c = client.clone();
            s.spawn(move || {
                for round in 0..3i64 {
                    let drift = mild_drift(g, round as usize + 1, 2 + round, 2);
                    let re = c.update(id.clone(), drift).unwrap();
                    assert!(re.throughput > 0.0, "{id} round {round}");
                    assert_ne!(re.outcome, WarmOutcome::Cold, "{id} round {round}");
                }
            });
        }
    });
    // Every tenant served 1 registration + 3 updates, mostly warm.
    let mut warm_total = 0.0;
    for (id, _, _) in &tenants {
        let rate = client.rate(id.clone()).unwrap();
        assert_eq!(rate.solves, 4, "{id}");
        warm_total += rate.warm_fraction;
    }
    assert!(
        warm_total / tenants.len() as f64 > 0.25,
        "warm fraction collapsed: {warm_total}"
    );
    service.shutdown();
}

#[test]
fn queued_updates_coalesce_latest_drift_wins() {
    let q = ShardQueue::new();
    let (tx1, rx1) = channel();
    let (tx2, rx2) = channel();
    let first = ParamScale {
        w_mult: vec![Ratio::new(3, 2)],
        c_mult: vec![],
    };
    let second = ParamScale {
        w_mult: vec![Ratio::new(5, 2)],
        c_mult: vec![],
    };
    q.push(
        Request::Update {
            tenant: "t".into(),
            scale: first,
            replies: vec![Replier::Sync(tx1)],
        },
        true,
    )
    .ok()
    .unwrap();
    q.push(
        Request::Update {
            tenant: "t".into(),
            scale: second.clone(),
            replies: vec![Replier::Sync(tx2)],
        },
        true,
    )
    .ok()
    .unwrap();
    // Both updates merged into one queue entry; a different tenant's
    // update stays separate.
    assert_eq!(q.queued(), 1);
    let (tx3, _rx3) = channel();
    q.push(
        Request::Update {
            tenant: "other".into(),
            scale: second.clone(),
            replies: vec![Replier::Sync(tx3)],
        },
        true,
    )
    .ok()
    .unwrap();
    assert_eq!(q.queued(), 2);

    let batch = q.pop_batch(16).unwrap();
    assert_eq!(batch.len(), 2);
    let Request::Update {
        tenant,
        scale,
        replies,
    } = &batch[0]
    else {
        panic!("expected the coalesced update first");
    };
    assert_eq!(tenant, "t");
    assert_eq!(scale, &second, "latest drift must win");
    assert_eq!(replies.len(), 2, "both callers share the re-plan");
    drop(batch);
    drop(rx1);
    drop(rx2);
}

#[test]
fn restarted_service_resumes_warm_from_snapshots() {
    let dir = scratch_dir("restart");
    let (g, m) = tenant_platform(7, 10);
    let cfg = ServiceConfig::builder()
        .workers(2)
        .persist_dir(dir.clone())
        .build()
        .unwrap();

    // First life: register, drift once, die (graceful shutdown journals).
    let before = {
        let service = Service::spawn(cfg.clone());
        let client = service.client();
        client.register("phoenix", g.clone(), m).unwrap();
        let re = client.update("phoenix", mild_drift(&g, 2, 5, 4)).unwrap();
        service.shutdown();
        re
    };

    // Second life: same persist_dir, fresh worker threads. The tenant is
    // already known (duplicate registration fails), its counters
    // survived, and the first re-plan is warm — zero cold solves.
    let service = Service::spawn(cfg);
    let client = service.client();
    assert_eq!(
        client.register("phoenix", g.clone(), m).unwrap_err(),
        ServiceError::DuplicateTenant("phoenix".into())
    );
    let rate = client.rate("phoenix").unwrap();
    assert!(!rate.resident, "restored tenants start parked");
    assert_eq!(rate.lp_solves, 2, "counters survive the restart");
    assert!((rate.throughput - before.throughput).abs() < 1e-12);

    let re = client.update("phoenix", mild_drift(&g, 3, 7, 5)).unwrap();
    assert!(
        re.outcome.used_warm_basis(),
        "restart re-plan went {:?} instead of warm",
        re.outcome
    );
    let rate = client.rate("phoenix").unwrap();
    assert_eq!(rate.lp_solves, 3);
    assert!(rate.resident);

    // An explicit snapshot journals every tenant.
    assert_eq!(client.snapshot().unwrap(), SnapshotReport { persisted: 1 });
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lru_eviction_parks_idle_tenants_and_revives_them_warm() {
    let service = Service::spawn(
        ServiceConfig::builder()
            .workers(1)
            .max_resident(1)
            .build()
            .unwrap(),
    );
    let client = service.client();
    let (g1, m1) = tenant_platform(11, 8);
    let (g2, m2) = tenant_platform(12, 8);
    client.register("a", g1.clone(), m1).unwrap();
    client.register("b", g2, m2).unwrap();

    // Registering `b` pushed `a` over the cap: parked, snapshot kept.
    assert!(!client.rate("a").unwrap().resident);
    assert!(client.rate("b").unwrap().resident);

    // Touching `a` revives it warm (not cold) and evicts `b` in turn.
    let re = client.update("a", mild_drift(&g1, 1, 4, 3)).unwrap();
    assert!(
        re.outcome.used_warm_basis(),
        "revived re-plan went {:?}",
        re.outcome
    );
    assert!(client.rate("a").unwrap().resident);
    assert!(!client.rate("b").unwrap().resident);
    service.shutdown();
}

#[test]
fn blown_deadline_serves_stale_plan_then_solves() {
    // A 1 microsecond deadline: every post-registration update blows it
    // (the builder rejects a deadline of exactly zero).
    let service = Service::spawn(
        ServiceConfig::builder()
            .workers(1)
            .deadline_ms(0.001)
            .build()
            .unwrap(),
    );
    let client = service.client();
    let (g, m) = tenant_platform(21, 8);
    let plan = client.register("slow", g.clone(), m).unwrap();

    let re = client.update("slow", mild_drift(&g, 1, 3, 2)).unwrap();
    assert!(re.stale, "deadline 0 must serve stale");
    assert_eq!(re.iterations, 0);
    assert!(
        (re.throughput - plan.throughput).abs() < 1e-12,
        "stale reply carries the last good plan"
    );

    // The fresh solve still ran right after the stale reply (same
    // worker, same queue — so it is visible by the time rate() answers).
    let rate = client.rate("slow").unwrap();
    assert_eq!(rate.stale_served, 1);
    assert_eq!(rate.solves, 2);
    assert_eq!(rate.lp_solves, 2);
    assert!(rate.throughput != plan.throughput || rate.lp_solves == 2);
    service.shutdown();
}

#[test]
fn socket_clients_speak_the_frame_protocol() {
    let service = Service::spawn(ServiceConfig::builder().workers(2).build().unwrap());
    let handle = service.listen("127.0.0.1:0").unwrap();
    let mut sock = SocketClient::connect(handle.addr()).unwrap();

    let (g, m) = tenant_platform(31, 8);
    let plan = sock.register("wire", &g, m).unwrap();
    assert!(plan.throughput > 0.0);
    assert_eq!(plan.outcome, WarmOutcome::Cold);

    let re = sock.update("wire", mild_drift(&g, 1, 3, 2)).unwrap();
    assert_ne!(re.outcome, WarmOutcome::Cold);
    assert!((sock.rate("wire").unwrap().throughput - re.throughput).abs() < 1e-12);

    let cert = sock.certify("wire").unwrap();
    assert!(cert.f64_gap < 1e-6);

    // Socket and in-process clients hit the same tenants.
    let rate = service.client().rate("wire").unwrap();
    assert_eq!(rate.solves, 2);

    // Service-level errors come back as typed error frames.
    match sock.rate("ghost").unwrap_err() {
        SocketError::Service(ServiceError::UnknownTenant(id)) => assert_eq!(id, "ghost"),
        other => panic!("wrong error: {other}"),
    }
    // Snapshot without a persist_dir is a solve error, not a hang.
    assert!(matches!(
        sock.snapshot().unwrap_err(),
        SocketError::Service(ServiceError::Solve(_))
    ));

    handle.stop();
    service.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
    ))]

    /// Any structurally valid warm snapshot survives the wire encoding
    /// bit-for-bit — the property persistence and the socket protocol
    /// both lean on.
    #[test]
    fn warm_start_serde_round_trips(seed in proptest::prelude::any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = rng.gen_range(1..12usize);
        let ncols = m + rng.gen_range(1..24usize);
        let art_start = rng.gen_range(0..=ncols);
        let basis: Vec<usize> = (0..m).map(|_| rng.gen_range(0..ncols)).collect();
        let at_upper: Vec<bool> = (0..ncols).map(|_| rng.gen_bool(0.3)).collect();
        let ws = WarmStart::new(m, ncols, art_start, basis, at_upper);

        let wire = serde_json::to_string(&ws).unwrap();
        let back: WarmStart = serde_json::from_str(&wire).unwrap();
        prop_assert_eq!(back.num_rows(), ws.num_rows());
        prop_assert_eq!(back.num_cols(), ws.num_cols());
        prop_assert_eq!(back.artificial_start(), ws.artificial_start());
        prop_assert_eq!(back.basis(), ws.basis());
        prop_assert_eq!(back.at_upper(), ws.at_upper());
    }
}
