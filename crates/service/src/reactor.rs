//! The evented socket server: a hand-rolled nonblocking poll loop.
//!
//! One reactor thread owns the listener and every connection. Each pass
//! it (1) accepts new connections, (2) reads whatever bytes are ready,
//! feeding them through a [`FrameBuf`] and dispatching complete request
//! frames onto the shard queues with a socket-path replier, (3) drains
//! finished [`Completion`]s from the workers into per-connection write
//! buffers, and (4) flushes those buffers as far as the sockets accept.
//! When a pass moves no bytes it sleeps briefly instead of spinning.
//!
//! The service crate forbids `unsafe`, so there is no raw `epoll` here —
//! just nonblocking sockets and a short idle sleep. That is plenty for
//! the service's concurrency levels (the expensive part of a request is
//! the LP solve on the worker, not the wire), and it keeps the reactor
//! portable and dependency-free.
//!
//! Responses carry the request's `seq` and may interleave across shards;
//! ordering *per tenant* is still FIFO because one tenant always lives
//! on one worker.

use crate::protocol::{
    encode_frame, FrameBuf, RequestBody, RequestFrame, ResponseBody, ResponseFrame,
};
use crate::worker::{Completion, Replier, Request, ShardQueue, SnapshotFanout, SnapshotReply};
use crate::{shard_of, Service, ServiceError};
use ss_platform::NodeId;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the reactor sleeps after a pass that moved no bytes.
const IDLE_SLEEP: Duration = Duration::from_micros(200);

/// A running socket listener, returned by [`Service::listen`]. Dropping
/// it (or calling [`stop`](ServerHandle::stop)) shuts the reactor down
/// and joins its thread; the service itself keeps running.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and serving socket clients and join the reactor.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

impl Service {
    /// Serve the frame protocol on `addr` (e.g. `"127.0.0.1:0"`). The
    /// reactor thread shares the worker shard queues with in-process
    /// [`ServiceClient`](crate::ServiceClient)s; stop it with
    /// [`ServerHandle::stop`] before [`Service::shutdown`].
    pub fn listen(&self, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let reactor = Reactor {
            queues: self.queues.clone(),
            coalesce: self.coalesce,
            stop: Arc::clone(&stop),
        };
        let handle = std::thread::Builder::new()
            .name("ss-service-reactor".into())
            .spawn(move || reactor.run(listener))?;
        Ok(ServerHandle {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }
}

struct Conn {
    stream: TcpStream,
    inbuf: FrameBuf,
    outbuf: Vec<u8>,
    /// Requests dispatched to workers whose completion hasn't been
    /// written back yet. A half-closed connection is kept alive until
    /// this drains.
    inflight: usize,
    eof: bool,
}

struct Reactor {
    queues: Vec<Arc<ShardQueue>>,
    coalesce: bool,
    stop: Arc<AtomicBool>,
}

impl Reactor {
    fn run(self, listener: TcpListener) {
        let (done_tx, done_rx) = channel::<Completion>();
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_conn: u64 = 0;
        let mut read_buf = vec![0u8; 64 << 10];

        while !self.stop.load(Ordering::Relaxed) {
            let mut busy = false;

            // 1. Accept.
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err()
                            || stream.set_nodelay(true).is_err()
                        {
                            continue;
                        }
                        conns.insert(
                            next_conn,
                            Conn {
                                stream,
                                inbuf: FrameBuf::new(),
                                outbuf: Vec::new(),
                                inflight: 0,
                                eof: false,
                            },
                        );
                        next_conn += 1;
                        busy = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }

            // 2. Read and dispatch.
            let mut dead = Vec::new();
            for (&id, conn) in conns.iter_mut() {
                loop {
                    match conn.stream.read(&mut read_buf) {
                        Ok(0) => {
                            conn.eof = true;
                            break;
                        }
                        Ok(n) => {
                            busy = true;
                            conn.inbuf.extend(&read_buf[..n]);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            dead.push(id);
                            break;
                        }
                    }
                }
                if dead.last() == Some(&id) {
                    continue;
                }
                loop {
                    match conn.inbuf.next_payload() {
                        Ok(Some(payload)) => {
                            busy = true;
                            match serde_json::from_str::<RequestFrame>(&payload) {
                                Ok(frame) => self.dispatch(id, conn, frame, &done_tx),
                                Err(_) => {
                                    // Unparsable request: the stream can't
                                    // be trusted past this point.
                                    dead.push(id);
                                    break;
                                }
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            dead.push(id);
                            break;
                        }
                    }
                }
            }
            for id in dead.drain(..) {
                conns.remove(&id);
            }

            // 3. Drain worker completions into write buffers.
            while let Ok(done) = done_rx.try_recv() {
                busy = true;
                let Some(conn) = conns.get_mut(&done.conn) else {
                    continue; // client went away; drop the answer
                };
                conn.inflight = conn.inflight.saturating_sub(1);
                let frame = ResponseFrame {
                    seq: done.seq,
                    body: done.body,
                };
                if let Ok(bytes) = encode_frame(&frame) {
                    conn.outbuf.extend_from_slice(&bytes);
                }
            }

            // 4. Flush.
            for (&id, conn) in conns.iter_mut() {
                while !conn.outbuf.is_empty() {
                    match conn.stream.write(&conn.outbuf) {
                        Ok(0) => {
                            dead.push(id);
                            break;
                        }
                        Ok(n) => {
                            busy = true;
                            conn.outbuf.drain(..n);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            dead.push(id);
                            break;
                        }
                    }
                }
                if conn.eof && conn.outbuf.is_empty() && conn.inflight == 0 {
                    dead.push(id);
                }
            }
            for id in dead.drain(..) {
                conns.remove(&id);
            }

            if !busy {
                std::thread::sleep(IDLE_SLEEP);
            }
        }
    }

    /// Route one parsed request frame to its worker (or answer an
    /// immediate error into the connection's write buffer).
    fn dispatch(
        &self,
        conn_id: u64,
        conn: &mut Conn,
        frame: RequestFrame,
        done: &Sender<Completion>,
    ) {
        let seq = frame.seq;
        fn reply<T>(conn: u64, seq: u64, done: &Sender<Completion>) -> Replier<T> {
            Replier::Socket {
                conn,
                seq,
                done: done.clone(),
            }
        }
        let (tenant, req) = match frame.body {
            RequestBody::Register {
                tenant,
                platform,
                master,
            } => match platform.to_platform() {
                Ok(platform) => (
                    tenant.clone(),
                    Request::Register {
                        tenant,
                        platform,
                        master: NodeId(master),
                        reply: reply(conn_id, seq, done),
                    },
                ),
                Err(e) => {
                    respond_now(
                        conn,
                        seq,
                        ResponseBody::Error(ServiceError::Solve(e.to_string())),
                    );
                    return;
                }
            },
            RequestBody::Update { tenant, scale } => (
                tenant.clone(),
                Request::Update {
                    tenant,
                    scale,
                    replies: vec![reply(conn_id, seq, done)],
                },
            ),
            RequestBody::Rate { tenant } => (
                tenant.clone(),
                Request::Rate {
                    tenant,
                    reply: reply(conn_id, seq, done),
                },
            ),
            RequestBody::Certify { tenant } => (
                tenant.clone(),
                Request::Certify {
                    tenant,
                    reply: reply(conn_id, seq, done),
                },
            ),
            RequestBody::Snapshot => {
                // Fan out to every worker; the last one to report sends
                // the single aggregated completion.
                let agg = Arc::new(Mutex::new(SnapshotFanout {
                    remaining: self.queues.len(),
                    persisted: 0,
                    error: None,
                    conn: conn_id,
                    seq,
                    done: done.clone(),
                }));
                conn.inflight += 1;
                for q in &self.queues {
                    if q.push(
                        Request::Snapshot {
                            reply: SnapshotReply::Fanout(Arc::clone(&agg)),
                        },
                        false,
                    )
                    .is_err()
                    {
                        // Mirror the worker-side aggregation: whoever
                        // decrements `remaining` to zero (under the
                        // lock) sends the single completion.
                        let mut a = agg.lock().expect("snapshot fanout poisoned");
                        a.error = Some(ServiceError::Disconnected);
                        a.remaining -= 1;
                        if a.remaining == 0 {
                            let body = ResponseBody::Error(
                                a.error.take().unwrap_or(ServiceError::Disconnected),
                            );
                            let _ = a.done.send(Completion {
                                conn: a.conn,
                                seq: a.seq,
                                body,
                            });
                        }
                    }
                }
                return;
            }
        };
        let shard = shard_of(&tenant, self.queues.len());
        conn.inflight += 1;
        if self.queues[shard].push(req, self.coalesce).is_err() {
            conn.inflight = conn.inflight.saturating_sub(1);
            respond_now(conn, seq, ResponseBody::Error(ServiceError::Disconnected));
        }
    }
}

/// Append an immediate (reactor-generated) response to the connection's
/// write buffer.
fn respond_now(conn: &mut Conn, seq: u64, body: ResponseBody) {
    if let Ok(bytes) = encode_frame(&ResponseFrame { seq, body }) {
        conn.outbuf.extend_from_slice(&bytes);
    }
}
