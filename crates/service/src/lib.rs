//! # ss-service — a multi-tenant online steady-state scheduling service
//!
//! The serving layer the §5.5 adaptive story scales up to: many
//! independent applications ("tenants"), each with its own platform and
//! master, all keeping a **hot warm-started re-solve session**
//! ([`SolveSession`](ss_core::session::SolveSession)) alive between
//! requests. A tenant's steady-state plan is recomputed only when its
//! observed parameters drift — and the re-solve reuses the previous
//! optimal basis *and* the previous symbolic CSC lowering, so a re-plan
//! costs a handful of simplex pivots plus a numeric refresh instead of a
//! full two-phase solve.
//!
//! ## Architecture
//!
//! ```text
//!             ┌────────────────┐ frames  ┌─────────┐
//!  TCP client │ poll-loop      │────────▶│ shard   │──▶ worker 0 {a, d, …}
//!  ──────────▶│ reactor        │         │ queues  │──▶ worker 1 {b, …}
//!             │ (nonblocking)  │◀────────│ (batch  │──▶ worker k {c, …}
//!             └────────────────┘ compl.  │  drain) │
//!  ServiceClient (in-process) ──────────▶└─────────┘
//! ```
//!
//! * **Sharding** — tenants are routed to workers by a stable FNV-1a hash
//!   of their id ([`shard_of`]), so all requests of one tenant serialize
//!   on one thread and its session needs no locking.
//! * **Shard queues** ([`worker`]) — each worker drains its queue in
//!   batches (`ServiceConfig::batch`) instead of parking on a blocking
//!   `recv` per request. Queued parameter updates for the *same tenant*
//!   are **coalesced** at enqueue time (latest drift wins, all callers
//!   share one re-plan) — sound because a [`ParamScale`] is absolute
//!   relative to the registered base platform.
//! * **Deadlines** — with `ServiceConfig::deadline_ms` set, a tenant
//!   whose recent solves (EWMA) exceed the deadline is served its **last
//!   good plan immediately** (`Replan::stale == true`) and the re-solve
//!   completes right after, off the caller's critical path.
//! * **LRU eviction** — with `ServiceConfig::max_resident` set, idle
//!   tenants are parked: their session is dropped but the scalar-free
//!   [`WarmStart`](ss_lp::WarmStart) snapshot is kept, so the next
//!   request revives them warm, not cold.
//! * **Snapshot persistence** ([`persist`]) — with
//!   `ServiceConfig::persist_dir` set, every tenant's platform, drift,
//!   counters and warm snapshot are journaled to disk; a restarted
//!   service reloads them and the first re-plan after restart
//!   warm-starts (zero cold solves).
//! * **Socket protocol** ([`protocol`], [`reactor`]) — a length-prefixed
//!   binary frame protocol over TCP, served by a hand-rolled nonblocking
//!   poll-loop reactor (no external event library); [`SocketClient`] is
//!   the matching blocking client.
//!
//! Re-plans run on the fast `f64` backend; [`ServiceClient::certify`]
//! re-solves a tenant **exactly** (warm-started from the same
//! scalar-free snapshot) and verifies the LP-duality certificate — the
//! on-demand checkpoint of the session layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod persist;
pub mod protocol;
pub mod reactor;
pub mod worker;

pub use client::{PendingReplan, ServiceClient, SocketClient, SocketError};
pub use persist::TenantRecord;
pub use reactor::ServerHandle;

use ss_core::WarmOutcome;
use ss_lp::KernelChoice;
use ss_num::Ratio;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use worker::ShardQueue;

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads (each owns a shard of the tenants). At least 1.
    pub workers: usize,
    /// LP kernel every tenant session runs on (`Auto` = the warm-capable
    /// sparse revised simplex).
    pub kernel: KernelChoice,
    /// Requests a worker drains from its shard queue per wakeup (≥ 1).
    pub batch: usize,
    /// Coalesce queued parameter updates per tenant (latest drift wins,
    /// all coalesced callers share one re-plan). On by default; the
    /// `service-scale` benchmark's unbatched baseline turns it off.
    pub coalesce: bool,
    /// Let each tenant session reuse its cached symbolic CSC lowering
    /// across re-plans (numeric refresh only). On by default.
    pub reuse_lowering: bool,
    /// Per-tenant solve deadline: when the tenant's recent solve time
    /// (EWMA) exceeds this, an update is answered with the last good
    /// plan immediately (`Replan::stale`) and the solve completes after
    /// the reply. `None` disables stale serving.
    pub deadline_ms: Option<f64>,
    /// Maximum resident (session-holding) tenants per worker; least
    /// recently used tenants beyond it are parked with their warm
    /// snapshot. `0` = unlimited.
    pub max_resident: usize,
    /// Directory for warm snapshot persistence. When set, tenants are
    /// journaled after every re-plan and reloaded on the next
    /// [`Service::spawn`] pointing at the same directory.
    pub persist_dir: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            kernel: KernelChoice::Auto,
            batch: 16,
            coalesce: true,
            reuse_lowering: true,
            deadline_ms: None,
            max_resident: 0,
            persist_dir: None,
        }
    }
}

impl ServiceConfig {
    /// A validating builder starting from the defaults.
    pub fn builder() -> ServiceConfigBuilder {
        ServiceConfigBuilder {
            cfg: ServiceConfig::default(),
        }
    }
}

/// An invalid [`ServiceConfig`] field, rejected by
/// [`ServiceConfigBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid service config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`ServiceConfig`] that validates on
/// [`build`](ServiceConfigBuilder::build): `workers ≥ 1`, `batch ≥ 1`,
/// and `deadline_ms` strictly positive and finite.
#[derive(Clone, Debug)]
pub struct ServiceConfigBuilder {
    cfg: ServiceConfig,
}

impl ServiceConfigBuilder {
    /// Worker threads (validated ≥ 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.cfg.workers = n;
        self
    }

    /// LP kernel for every tenant session.
    pub fn kernel(mut self, k: KernelChoice) -> Self {
        self.cfg.kernel = k;
        self
    }

    /// Requests drained per worker wakeup (validated ≥ 1).
    pub fn batch(mut self, n: usize) -> Self {
        self.cfg.batch = n;
        self
    }

    /// Coalesce queued updates per tenant.
    pub fn coalesce(mut self, on: bool) -> Self {
        self.cfg.coalesce = on;
        self
    }

    /// Reuse each session's cached symbolic lowering.
    pub fn reuse_lowering(mut self, on: bool) -> Self {
        self.cfg.reuse_lowering = on;
        self
    }

    /// Per-tenant solve deadline in milliseconds (validated > 0, finite).
    pub fn deadline_ms(mut self, ms: f64) -> Self {
        self.cfg.deadline_ms = Some(ms);
        self
    }

    /// Maximum resident tenants per worker (`0` = unlimited).
    pub fn max_resident(mut self, n: usize) -> Self {
        self.cfg.max_resident = n;
        self
    }

    /// Warm-snapshot persistence directory.
    pub fn persist_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cfg.persist_dir = Some(dir.into());
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<ServiceConfig, ConfigError> {
        if self.cfg.workers == 0 {
            return Err(ConfigError("workers must be >= 1".into()));
        }
        if self.cfg.batch == 0 {
            return Err(ConfigError("batch must be >= 1".into()));
        }
        if let Some(ms) = self.cfg.deadline_ms {
            if ms <= 0.0 || !ms.is_finite() {
                return Err(ConfigError(format!(
                    "deadline_ms must be a positive finite number, got {ms}"
                )));
            }
        }
        Ok(self.cfg)
    }
}

/// Why a request failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// No tenant registered under this id.
    UnknownTenant(String),
    /// A tenant with this id already exists.
    DuplicateTenant(String),
    /// The tenant's LP could not be solved (or certified).
    Solve(String),
    /// The service is shutting down (a worker hung up).
    Disconnected,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownTenant(id) => write!(f, "unknown tenant `{id}`"),
            ServiceError::DuplicateTenant(id) => write!(f, "tenant `{id}` already registered"),
            ServiceError::Solve(msg) => write!(f, "solve failed: {msg}"),
            ServiceError::Disconnected => f.write_str("service disconnected"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// The result of a (re-)plan: the new steady-state rate plus the warm/cold
/// telemetry of the solve that produced it.
#[derive(Clone, Debug)]
pub struct Replan {
    /// Tenant id.
    pub tenant: String,
    /// Steady-state throughput of the plan (tasks per time unit). For a
    /// stale reply this is the **last good** plan's rate.
    pub throughput: f64,
    /// Which warm/cold path the re-solve took.
    pub outcome: WarmOutcome,
    /// Simplex pivots spent (repair included); 0 on a stale reply.
    pub iterations: usize,
    /// Wall-clock of the re-plan in milliseconds; 0 on a stale reply.
    pub solve_ms: f64,
    /// Columns priced by the entering rule across the re-plan (primal
    /// scans plus dual-repair candidate scans).
    pub priced_columns: usize,
    /// Wall-clock spent inside pricing, in milliseconds.
    pub pricing_ms: f64,
    /// Wall-clock spent in full basis (re)factorizations, in
    /// milliseconds (see `ss_lp::FactorStats`).
    pub factor_ms: f64,
    /// Stored nonzeros of the solve's most recent full factorization.
    pub factor_nnz: usize,
    /// Peak factor-nnz over basis-nnz fill ratio observed by the solve.
    pub fill_ratio: f64,
    /// `true` when the deadline was blown and this reply carries the
    /// previous plan; the fresh re-solve completed right after it.
    pub stale: bool,
    /// Update requests this re-plan answered (1 = no coalescing).
    pub coalesced: usize,
}

/// A cheap rate query: the tenant's current plan, no solve performed.
#[derive(Clone, Debug)]
pub struct RateReport {
    /// Tenant id.
    pub tenant: String,
    /// Steady-state throughput of the current plan.
    pub throughput: f64,
    /// Re-plan requests answered so far (registration included; stale
    /// and coalesced replies count — each caller got an answer).
    pub solves: usize,
    /// LP solves actually performed (coalescing and stale serving make
    /// this ≤ [`RateReport::solves`]).
    pub lp_solves: usize,
    /// Fraction of LP solves that reused a warm basis (pure warm,
    /// dual-repaired, or primal-repaired).
    pub warm_fraction: f64,
    /// LP solves whose warm basis the bounded dual simplex restored —
    /// the cheap drift path; see [`WarmOutcome::DualRepaired`].
    pub dual_repaired: usize,
    /// Update requests answered with the last good plan under a blown
    /// deadline.
    pub stale_served: usize,
    /// Update requests absorbed into another request's re-plan by
    /// enqueue-time coalescing.
    pub coalesced: usize,
    /// `true` while the tenant holds a live session; `false` when parked
    /// by LRU eviction (its warm snapshot is retained).
    pub resident: bool,
    /// Fill ratio of the most recent LP solve's factorization.
    pub last_fill_ratio: f64,
    /// Factor nonzeros of the most recent LP solve.
    pub last_factor_nnz: usize,
}

/// The result of an exact re-certification checkpoint.
#[derive(Clone, Debug)]
pub struct CertifiedRate {
    /// Tenant id.
    pub tenant: String,
    /// The exact optimal throughput, duality-certified.
    pub exact: Ratio,
    /// `|exact − f64 plan|` — the fast path's current drift.
    pub f64_gap: f64,
}

/// The result of an explicit snapshot request: how many tenants were
/// journaled to the persistence directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotReport {
    /// Tenant records written.
    pub persisted: usize,
}

/// FNV-1a over the tenant id — the stable shard router. Exposed so
/// external tooling can predict which worker owns a tenant.
pub fn shard_of(tenant: &str, workers: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tenant.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % workers as u64) as usize
}

/// A running scheduling service: worker threads owning sharded tenants.
///
/// Dropping the service shuts the workers down and joins them; use
/// [`Service::client`] to get (cloneable) in-process request handles and
/// [`Service::listen`] to serve the socket protocol.
pub struct Service {
    pub(crate) queues: Vec<Arc<ShardQueue>>,
    pub(crate) coalesce: bool,
    handles: Vec<JoinHandle<()>>,
}

impl Service {
    /// Spawn the worker threads. With `persist_dir` set, previously
    /// journaled tenants are reloaded (parked, warm snapshot in hand) and
    /// re-sharded across the new worker count.
    pub fn spawn(config: ServiceConfig) -> Service {
        let workers = config.workers.max(1);
        let mut preloaded: Vec<Vec<persist::TenantRecord>> = (0..workers).map(|_| vec![]).collect();
        if let Some(dir) = &config.persist_dir {
            for rec in persist::load_all(dir) {
                preloaded[shard_of(&rec.tenant, workers)].push(rec);
            }
        }
        let mut queues = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for (i, records) in preloaded.into_iter().enumerate() {
            let q = ShardQueue::new();
            let wq = Arc::clone(&q);
            let cfg = worker::WorkerConfig {
                kernel: config.kernel,
                batch: config.batch.max(1),
                reuse_lowering: config.reuse_lowering,
                deadline_ms: config.deadline_ms,
                max_resident: config.max_resident,
                persist_dir: config.persist_dir.clone(),
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ss-service-{i}"))
                    .spawn(move || worker::worker_loop(wq, cfg, records))
                    .expect("spawn service worker"),
            );
            queues.push(q);
        }
        Service {
            queues,
            coalesce: config.coalesce,
            handles,
        }
    }

    /// A new client handle (cheap to clone, safe to hand to other threads).
    pub fn client(&self) -> ServiceClient {
        ServiceClient::new(self.queues.clone(), self.coalesce)
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.queues.len()
    }

    /// Graceful shutdown: stop all workers and join them. Resident
    /// tenants are journaled first when persistence is configured.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for q in &self.queues {
            q.close();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests;
