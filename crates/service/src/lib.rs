//! # ss-service — a multi-tenant online steady-state scheduling service
//!
//! The serving layer the §5.5 adaptive story scales up to: many
//! independent applications ("tenants"), each with its own platform and
//! master, all keeping a **hot warm-started re-solve session**
//! ([`SolveSession`]) alive between requests. A tenant's steady-state
//! plan is recomputed only when its observed parameters drift — and the
//! re-solve reuses the previous optimal basis, so a re-plan costs a
//! handful of simplex pivots instead of a full two-phase solve.
//!
//! ## Architecture
//!
//! ```text
//!  ServiceClient ──┬── mpsc ──▶ worker 0 ── {tenant a, tenant d, ...}
//!   (cloneable)    ├── mpsc ──▶ worker 1 ── {tenant b, ...}
//!                  └── mpsc ──▶ worker k ── {tenant c, ...}
//! ```
//!
//! * One OS thread per worker (`std::thread` + `std::sync::mpsc`, the
//!   same no-dependency style as `ss_bench::parallel::par_map`); tenants
//!   are sharded across workers by a stable hash of their id, so all
//!   requests of one tenant serialize on one thread and its session needs
//!   no locking.
//! * Requests carry their own reply channel; clients block only on their
//!   own request.
//! * Re-plans run on the fast `f64` backend; [`ServiceClient::certify`]
//!   re-solves a tenant **exactly** (warm-started from the same
//!   scalar-free snapshot) and verifies the LP-duality certificate — the
//!   on-demand checkpoint of the session layer.
//!
//! Parameter drift is expressed as a [`ParamScale`] relative to the
//! tenant's registered nominal platform, matching the §5.5 simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ss_core::master_slave::MasterSlave;
use ss_core::session::SolveSession;
use ss_core::WarmOutcome;
use ss_lp::KernelChoice;
use ss_num::Ratio;
use ss_platform::{NodeId, Platform};
use ss_sim::dynamic::ParamScale;
use std::collections::HashMap;
use std::fmt;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads (each owns a shard of the tenants). At least 1.
    pub workers: usize,
    /// LP kernel every tenant session runs on (`Auto` = the warm-capable
    /// sparse revised simplex).
    pub kernel: KernelChoice,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            kernel: KernelChoice::Auto,
        }
    }
}

/// Why a request failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// No tenant registered under this id.
    UnknownTenant(String),
    /// A tenant with this id already exists.
    DuplicateTenant(String),
    /// The tenant's LP could not be solved (or certified).
    Solve(String),
    /// The service is shutting down (a worker hung up).
    Disconnected,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownTenant(id) => write!(f, "unknown tenant `{id}`"),
            ServiceError::DuplicateTenant(id) => write!(f, "tenant `{id}` already registered"),
            ServiceError::Solve(msg) => write!(f, "solve failed: {msg}"),
            ServiceError::Disconnected => f.write_str("service disconnected"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// The result of a (re-)plan: the new steady-state rate plus the warm/cold
/// telemetry of the solve that produced it.
#[derive(Clone, Debug)]
pub struct Replan {
    /// Tenant id.
    pub tenant: String,
    /// Steady-state throughput of the new plan (tasks per time unit).
    pub throughput: f64,
    /// Which warm/cold path the re-solve took.
    pub outcome: WarmOutcome,
    /// Simplex pivots spent (repair included).
    pub iterations: usize,
    /// Wall-clock of the re-plan in milliseconds.
    pub solve_ms: f64,
    /// Columns priced by the entering rule across the re-plan (primal
    /// scans plus dual-repair candidate scans).
    pub priced_columns: usize,
    /// Wall-clock spent inside pricing, in milliseconds.
    pub pricing_ms: f64,
}

/// A cheap rate query: the tenant's current plan, no solve performed.
#[derive(Clone, Debug)]
pub struct RateReport {
    /// Tenant id.
    pub tenant: String,
    /// Steady-state throughput of the current plan.
    pub throughput: f64,
    /// Re-plans served so far (including registration).
    pub solves: usize,
    /// Fraction of re-plans that reused a warm basis (pure warm,
    /// dual-repaired, or primal-repaired).
    pub warm_fraction: f64,
    /// Re-plans whose warm basis the bounded dual simplex restored — the
    /// cheap drift path; see [`WarmOutcome::DualRepaired`].
    pub dual_repaired: usize,
}

/// The result of an exact re-certification checkpoint.
#[derive(Clone, Debug)]
pub struct CertifiedRate {
    /// Tenant id.
    pub tenant: String,
    /// The exact optimal throughput, duality-certified.
    pub exact: Ratio,
    /// `|exact − f64 plan|` — the fast path's current drift.
    pub f64_gap: f64,
}

enum Request {
    Register {
        tenant: String,
        platform: Platform,
        master: NodeId,
        reply: Sender<Result<Replan, ServiceError>>,
    },
    Update {
        tenant: String,
        scale: ParamScale,
        reply: Sender<Result<Replan, ServiceError>>,
    },
    Rate {
        tenant: String,
        reply: Sender<Result<RateReport, ServiceError>>,
    },
    Certify {
        tenant: String,
        reply: Sender<Result<CertifiedRate, ServiceError>>,
    },
    Shutdown,
}

struct Tenant {
    /// The registered nominal platform ([`ParamScale`]s are relative to it).
    base: Platform,
    /// The platform under the most recent drift.
    current: Platform,
    session: SolveSession<f64, MasterSlave>,
    throughput: f64,
}

/// FNV-1a over the tenant id — the stable shard router.
fn shard_of(tenant: &str, workers: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tenant.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % workers as u64) as usize
}

fn worker_loop(rx: Receiver<Request>, kernel: KernelChoice) {
    let mut tenants: HashMap<String, Tenant> = HashMap::new();
    while let Ok(req) = rx.recv() {
        match req {
            Request::Register {
                tenant,
                platform,
                master,
                reply,
            } => {
                let out = match tenants.entry(tenant.clone()) {
                    std::collections::hash_map::Entry::Occupied(_) => {
                        Err(ServiceError::DuplicateTenant(tenant))
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        let mut t = Tenant {
                            base: platform.clone(),
                            current: platform,
                            session: SolveSession::with_kernel(MasterSlave::new(master), kernel),
                            throughput: 0.0,
                        };
                        let r = replan(&tenant, &mut t);
                        if r.is_ok() {
                            slot.insert(t);
                        }
                        r
                    }
                };
                let _ = reply.send(out);
            }
            Request::Update {
                tenant,
                scale,
                reply,
            } => {
                let out = match tenants.get_mut(&tenant) {
                    None => Err(ServiceError::UnknownTenant(tenant)),
                    Some(t) => {
                        t.current = scale.apply(&t.base);
                        replan(&tenant, t)
                    }
                };
                let _ = reply.send(out);
            }
            Request::Rate { tenant, reply } => {
                let out = match tenants.get(&tenant) {
                    None => Err(ServiceError::UnknownTenant(tenant)),
                    Some(t) => Ok(RateReport {
                        tenant,
                        throughput: t.throughput,
                        solves: t.session.stats().solves,
                        warm_fraction: t.session.stats().warm_fraction(),
                        dual_repaired: t.session.stats().dual_repaired,
                    }),
                };
                let _ = reply.send(out);
            }
            Request::Certify { tenant, reply } => {
                let out = match tenants.get_mut(&tenant) {
                    None => Err(ServiceError::UnknownTenant(tenant)),
                    Some(t) => match t.session.certify(&t.current) {
                        Err(e) => Err(ServiceError::Solve(e.to_string())),
                        Ok(exact) => Ok(CertifiedRate {
                            f64_gap: (exact.objective_f64() - t.throughput).abs(),
                            exact: exact.objective().clone(),
                            tenant,
                        }),
                    },
                };
                let _ = reply.send(out);
            }
            Request::Shutdown => break,
        }
    }
}

// A free function rather than a `Tenant` method because `Request::Update`
// needs it while holding the map entry mutably *and* the tenant id.
fn replan(tenant: &str, t: &mut Tenant) -> Result<Replan, ServiceError> {
    match t.session.resolve(&t.current) {
        Err(e) => Err(ServiceError::Solve(e.to_string())),
        Ok(s) => {
            t.throughput = s.activities.objective_f64();
            Ok(Replan {
                tenant: tenant.to_string(),
                throughput: t.throughput,
                outcome: s.telemetry.outcome,
                iterations: s.telemetry.iterations,
                solve_ms: s.telemetry.solve_ms,
                priced_columns: s.telemetry.priced_columns,
                pricing_ms: s.telemetry.pricing_ms,
            })
        }
    }
}

/// Cloneable handle for talking to a running [`Service`]. Every method
/// blocks on its own reply channel only; clones can issue requests from
/// many threads concurrently.
#[derive(Clone)]
pub struct ServiceClient {
    txs: Vec<Sender<Request>>,
}

impl ServiceClient {
    fn send<R>(
        &self,
        tenant: &str,
        make: impl FnOnce(Sender<Result<R, ServiceError>>) -> Request,
    ) -> Result<R, ServiceError> {
        let (tx, rx) = channel();
        self.txs[shard_of(tenant, self.txs.len())]
            .send(make(tx))
            .map_err(|_| ServiceError::Disconnected)?;
        rx.recv().map_err(|_| ServiceError::Disconnected)?
    }

    /// Register a tenant (platform + master) and compute its initial
    /// plan. Fails on duplicate ids.
    pub fn register(
        &self,
        tenant: impl Into<String>,
        platform: Platform,
        master: NodeId,
    ) -> Result<Replan, ServiceError> {
        let tenant = tenant.into();
        self.send(&tenant.clone(), |reply| Request::Register {
            tenant,
            platform,
            master,
            reply,
        })
    }

    /// Report drifted parameters (relative to the registered platform)
    /// and re-plan — warm-started from the tenant's previous basis.
    pub fn update(
        &self,
        tenant: impl Into<String>,
        scale: ParamScale,
    ) -> Result<Replan, ServiceError> {
        let tenant = tenant.into();
        self.send(&tenant.clone(), |reply| Request::Update {
            tenant,
            scale,
            reply,
        })
    }

    /// The tenant's current steady-state rate (no solve).
    pub fn rate(&self, tenant: impl Into<String>) -> Result<RateReport, ServiceError> {
        let tenant = tenant.into();
        self.send(&tenant.clone(), |reply| Request::Rate { tenant, reply })
    }

    /// Exact re-certification checkpoint: re-solve the tenant's current
    /// platform with the exact backend (warm-started from the same
    /// snapshot) and verify the LP-duality certificate.
    pub fn certify(&self, tenant: impl Into<String>) -> Result<CertifiedRate, ServiceError> {
        let tenant = tenant.into();
        self.send(&tenant.clone(), |reply| Request::Certify { tenant, reply })
    }
}

/// A running scheduling service: worker threads owning sharded tenants.
///
/// Dropping the service shuts the workers down and joins them; use
/// [`Service::client`] to get (cloneable) request handles first.
pub struct Service {
    txs: Vec<Sender<Request>>,
    handles: Vec<JoinHandle<()>>,
}

impl Service {
    /// Spawn the worker threads.
    pub fn spawn(config: ServiceConfig) -> Service {
        let workers = config.workers.max(1);
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = channel();
            let kernel = config.kernel;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ss-service-{i}"))
                    .spawn(move || worker_loop(rx, kernel))
                    .expect("spawn service worker"),
            );
            txs.push(tx);
        }
        Service { txs, handles }
    }

    /// A new client handle (cheap to clone, safe to hand to other threads).
    pub fn client(&self) -> ServiceClient {
        ServiceClient {
            txs: self.txs.clone(),
        }
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.txs.len()
    }

    /// Graceful shutdown: stop all workers and join them.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for tx in &self.txs {
            let _ = tx.send(Request::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ss_platform::topo;

    fn tenant_platform(seed: u64, p: usize) -> (Platform, NodeId) {
        let mut rng = StdRng::seed_from_u64(seed);
        topo::random_connected(&mut rng, p, 0.3, &topo::ParamRange::default())
    }

    fn mild_drift(g: &Platform, node: usize, num: i64, den: i64) -> ParamScale {
        ParamScale::nominal(g).with_node(NodeId(node % g.num_nodes()), Ratio::new(num, den))
    }

    #[test]
    fn register_update_rate_certify_roundtrip() {
        let service = Service::spawn(ServiceConfig::default());
        let client = service.client();
        let (g, m) = tenant_platform(1, 8);

        let plan = client.register("acme", g.clone(), m).unwrap();
        assert!(plan.throughput > 0.0);
        assert_eq!(plan.outcome, WarmOutcome::Cold);

        // A drift re-plan goes through the warm machinery, never a
        // hint-less cold solve.
        let re = client.update("acme", mild_drift(&g, 1, 3, 2)).unwrap();
        assert!(re.throughput > 0.0);
        assert_ne!(re.outcome, WarmOutcome::Cold);

        let rate = client.rate("acme").unwrap();
        assert_eq!(rate.solves, 2);
        assert!((rate.throughput - re.throughput).abs() < 1e-12);

        // Exact checkpoint agrees with the fast plan.
        let cert = client.certify("acme").unwrap();
        assert!(cert.f64_gap < 1e-6, "gap {}", cert.f64_gap);
        assert!(cert.exact.is_positive());

        service.shutdown();
    }

    #[test]
    fn unknown_and_duplicate_tenants_error() {
        let service = Service::spawn(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let client = service.client();
        assert_eq!(
            client.rate("ghost").unwrap_err(),
            ServiceError::UnknownTenant("ghost".into())
        );
        let (g, m) = tenant_platform(2, 6);
        client.register("dup", g.clone(), m).unwrap();
        assert_eq!(
            client.register("dup", g, m).unwrap_err(),
            ServiceError::DuplicateTenant("dup".into())
        );
    }

    #[test]
    fn many_tenants_replan_concurrently_and_stay_warm() {
        let service = Service::spawn(ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        });
        let client = service.client();
        let tenants: Vec<(String, Platform, NodeId)> = (0..8)
            .map(|i| {
                let (g, m) = tenant_platform(100 + i, 6 + (i as usize % 3) * 2);
                (format!("tenant-{i}"), g, m)
            })
            .collect();
        for (id, g, m) in &tenants {
            client.register(id.clone(), g.clone(), *m).unwrap();
        }
        // Concurrent drift updates from one client clone per tenant.
        std::thread::scope(|s| {
            for (id, g, _) in &tenants {
                let c = client.clone();
                s.spawn(move || {
                    for round in 0..3i64 {
                        let drift = mild_drift(g, round as usize + 1, 2 + round, 2);
                        let re = c.update(id.clone(), drift).unwrap();
                        assert!(re.throughput > 0.0, "{id} round {round}");
                        assert_ne!(re.outcome, WarmOutcome::Cold, "{id} round {round}");
                    }
                });
            }
        });
        // Every tenant served 1 registration + 3 updates, mostly warm.
        let mut warm_total = 0.0;
        for (id, _, _) in &tenants {
            let rate = client.rate(id.clone()).unwrap();
            assert_eq!(rate.solves, 4, "{id}");
            warm_total += rate.warm_fraction;
        }
        assert!(
            warm_total / tenants.len() as f64 > 0.25,
            "warm fraction collapsed: {warm_total}"
        );
        service.shutdown();
    }
}
