//! The socket wire protocol: length-prefixed JSON frames.
//!
//! Every message on the wire is one **frame**:
//!
//! ```text
//! ┌───────────────┬──────────────────────────────┐
//! │ u32 LE length │ length bytes of JSON payload │
//! └───────────────┴──────────────────────────────┘
//! ```
//!
//! Requests and responses carry a client-chosen `seq` number; the server
//! echoes it back, so responses may arrive out of order (workers of
//! different shards finish independently) and the client matches them
//! up. Payloads (see the README's frame table):
//!
//! | op         | request fields                        | response body        |
//! |------------|---------------------------------------|----------------------|
//! | `register` | `tenant`, `platform` (spec), `master` | `replan`             |
//! | `update`   | `tenant`, `scale` (drift factors)     | `replan`             |
//! | `rate`     | `tenant`                              | `rate`               |
//! | `certify`  | `tenant`                              | `certified`          |
//! | `snapshot` | —                                     | `snapshot`           |
//!
//! Any failure comes back as an `error` body carrying a machine-readable
//! `code` (`unknown-tenant`, `duplicate-tenant`, `solve`, `disconnected`)
//! plus a human `detail`; a malformed frame drops the connection. Rationals (the certified exact
//! rate, drift factors) travel as `"n/d"` strings via `ss-num`'s serde
//! impls; platforms travel as [`PlatformSpec`] and are re-validated on
//! the server.

use crate::{CertifiedRate, RateReport, Replan, ServiceError, SnapshotReport};
use serde::ser::SerializeStruct as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use ss_core::WarmOutcome;
use ss_num::Ratio;
use ss_platform::PlatformSpec;
use ss_sim::dynamic::ParamScale;
use std::io::{self, Read, Write};

/// Upper bound on a frame payload; a declared length beyond this is
/// treated as a protocol error (it would otherwise be an allocation DoS).
pub const MAX_FRAME: usize = 64 << 20;

/// One request as it travels on the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestFrame {
    /// Client-chosen sequence number, echoed in the response.
    pub seq: u64,
    /// The operation.
    pub body: RequestBody,
}

/// The operation a request frame asks for.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestBody {
    /// Register a tenant: platform spec + master node index.
    Register {
        /// Tenant id.
        tenant: String,
        /// The platform in serializable form (re-validated server-side).
        platform: PlatformSpec,
        /// Master node index into the spec's node list.
        master: usize,
    },
    /// Report drifted parameters and re-plan.
    Update {
        /// Tenant id.
        tenant: String,
        /// Drift relative to the registered platform.
        scale: ParamScale,
    },
    /// Query the current plan (no solve).
    Rate {
        /// Tenant id.
        tenant: String,
    },
    /// Exact duality-certified checkpoint.
    Certify {
        /// Tenant id.
        tenant: String,
    },
    /// Journal every tenant to the persistence directory now.
    Snapshot,
}

/// One response as it travels on the wire.
#[derive(Clone, Debug)]
pub struct ResponseFrame {
    /// The request's sequence number.
    pub seq: u64,
    /// The result.
    pub body: ResponseBody,
}

/// A response payload.
#[derive(Clone, Debug)]
pub enum ResponseBody {
    /// A (re-)plan.
    Replan(Replan),
    /// A rate report.
    Rate(RateReport),
    /// An exact certified rate.
    Certified(CertifiedRate),
    /// A snapshot acknowledgment.
    Snapshot(SnapshotReport),
    /// The request failed.
    Error(ServiceError),
}

impl From<Replan> for ResponseBody {
    fn from(v: Replan) -> ResponseBody {
        ResponseBody::Replan(v)
    }
}
impl From<RateReport> for ResponseBody {
    fn from(v: RateReport) -> ResponseBody {
        ResponseBody::Rate(v)
    }
}
impl From<CertifiedRate> for ResponseBody {
    fn from(v: CertifiedRate) -> ResponseBody {
        ResponseBody::Certified(v)
    }
}
impl From<SnapshotReport> for ResponseBody {
    fn from(v: SnapshotReport) -> ResponseBody {
        ResponseBody::Snapshot(v)
    }
}

// ---------------------------------------------------------------------------
// Serde impls (hand-written; the offline shim has no derive macro).
// ---------------------------------------------------------------------------

fn outcome_str(o: WarmOutcome) -> &'static str {
    match o {
        WarmOutcome::Cold => "cold",
        WarmOutcome::Warm => "warm",
        WarmOutcome::DualRepaired => "dual-repaired",
        WarmOutcome::Repaired => "repaired",
        WarmOutcome::ColdFallback => "cold-fallback",
    }
}

fn outcome_from_str<E: serde::de::Error>(s: &str) -> Result<WarmOutcome, E> {
    Ok(match s {
        "cold" => WarmOutcome::Cold,
        "warm" => WarmOutcome::Warm,
        "dual-repaired" => WarmOutcome::DualRepaired,
        "repaired" => WarmOutcome::Repaired,
        "cold-fallback" => WarmOutcome::ColdFallback,
        other => return Err(E::custom(format!("unknown warm outcome `{other}`"))),
    })
}

impl Serialize for Replan {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("Replan", 12)?;
        st.serialize_field("tenant", &self.tenant)?;
        st.serialize_field("throughput", &self.throughput)?;
        st.serialize_field("outcome", outcome_str(self.outcome))?;
        st.serialize_field("iterations", &self.iterations)?;
        st.serialize_field("solve_ms", &self.solve_ms)?;
        st.serialize_field("priced_columns", &self.priced_columns)?;
        st.serialize_field("pricing_ms", &self.pricing_ms)?;
        st.serialize_field("factor_ms", &self.factor_ms)?;
        st.serialize_field("factor_nnz", &self.factor_nnz)?;
        st.serialize_field("fill_ratio", &self.fill_ratio)?;
        st.serialize_field("stale", &self.stale)?;
        st.serialize_field("coalesced", &self.coalesced)?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for Replan {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Replan, D::Error> {
        Ok(Replan {
            tenant: String::deserialize(d.clone().take_field("tenant")?)?,
            throughput: f64::deserialize(d.clone().take_field("throughput")?)?,
            outcome: outcome_from_str(&d.clone().take_field("outcome")?.take_str()?)?,
            iterations: usize::deserialize(d.clone().take_field("iterations")?)?,
            solve_ms: f64::deserialize(d.clone().take_field("solve_ms")?)?,
            priced_columns: usize::deserialize(d.clone().take_field("priced_columns")?)?,
            pricing_ms: f64::deserialize(d.clone().take_field("pricing_ms")?)?,
            factor_ms: f64::deserialize(d.clone().take_field("factor_ms")?)?,
            factor_nnz: usize::deserialize(d.clone().take_field("factor_nnz")?)?,
            fill_ratio: f64::deserialize(d.clone().take_field("fill_ratio")?)?,
            stale: bool::deserialize(d.clone().take_field("stale")?)?,
            coalesced: usize::deserialize(d.take_field("coalesced")?)?,
        })
    }
}

impl Serialize for RateReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("RateReport", 11)?;
        st.serialize_field("tenant", &self.tenant)?;
        st.serialize_field("throughput", &self.throughput)?;
        st.serialize_field("solves", &self.solves)?;
        st.serialize_field("lp_solves", &self.lp_solves)?;
        st.serialize_field("warm_fraction", &self.warm_fraction)?;
        st.serialize_field("dual_repaired", &self.dual_repaired)?;
        st.serialize_field("stale_served", &self.stale_served)?;
        st.serialize_field("coalesced", &self.coalesced)?;
        st.serialize_field("resident", &self.resident)?;
        st.serialize_field("last_fill_ratio", &self.last_fill_ratio)?;
        st.serialize_field("last_factor_nnz", &self.last_factor_nnz)?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for RateReport {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<RateReport, D::Error> {
        Ok(RateReport {
            tenant: String::deserialize(d.clone().take_field("tenant")?)?,
            throughput: f64::deserialize(d.clone().take_field("throughput")?)?,
            solves: usize::deserialize(d.clone().take_field("solves")?)?,
            lp_solves: usize::deserialize(d.clone().take_field("lp_solves")?)?,
            warm_fraction: f64::deserialize(d.clone().take_field("warm_fraction")?)?,
            dual_repaired: usize::deserialize(d.clone().take_field("dual_repaired")?)?,
            stale_served: usize::deserialize(d.clone().take_field("stale_served")?)?,
            coalesced: usize::deserialize(d.clone().take_field("coalesced")?)?,
            resident: bool::deserialize(d.clone().take_field("resident")?)?,
            last_fill_ratio: f64::deserialize(d.clone().take_field("last_fill_ratio")?)?,
            last_factor_nnz: usize::deserialize(d.take_field("last_factor_nnz")?)?,
        })
    }
}

impl Serialize for CertifiedRate {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("CertifiedRate", 3)?;
        st.serialize_field("tenant", &self.tenant)?;
        st.serialize_field("exact", &self.exact)?;
        st.serialize_field("f64_gap", &self.f64_gap)?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for CertifiedRate {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<CertifiedRate, D::Error> {
        Ok(CertifiedRate {
            tenant: String::deserialize(d.clone().take_field("tenant")?)?,
            exact: Ratio::deserialize(d.clone().take_field("exact")?)?,
            f64_gap: f64::deserialize(d.take_field("f64_gap")?)?,
        })
    }
}

impl Serialize for SnapshotReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("SnapshotReport", 1)?;
        st.serialize_field("persisted", &self.persisted)?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for SnapshotReport {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<SnapshotReport, D::Error> {
        Ok(SnapshotReport {
            persisted: usize::deserialize(d.take_field("persisted")?)?,
        })
    }
}

impl Serialize for ServiceError {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let (code, detail) = match self {
            ServiceError::UnknownTenant(id) => ("unknown-tenant", id.clone()),
            ServiceError::DuplicateTenant(id) => ("duplicate-tenant", id.clone()),
            ServiceError::Solve(msg) => ("solve", msg.clone()),
            ServiceError::Disconnected => ("disconnected", String::new()),
        };
        let mut st = serializer.serialize_struct("ServiceError", 2)?;
        st.serialize_field("code", code)?;
        st.serialize_field("detail", &detail)?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for ServiceError {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<ServiceError, D::Error> {
        let code = d.clone().take_field("code")?.take_str()?;
        let detail = String::deserialize(d.take_field("detail")?)?;
        Ok(match code.as_str() {
            "unknown-tenant" => ServiceError::UnknownTenant(detail),
            "duplicate-tenant" => ServiceError::DuplicateTenant(detail),
            "solve" => ServiceError::Solve(detail),
            "disconnected" => ServiceError::Disconnected,
            other => {
                return Err(serde::de::Error::custom(format!(
                    "unknown service error code `{other}`"
                )))
            }
        })
    }
}

impl Serialize for RequestFrame {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match &self.body {
            RequestBody::Register {
                tenant,
                platform,
                master,
            } => {
                let mut st = serializer.serialize_struct("RequestFrame", 5)?;
                st.serialize_field("seq", &self.seq)?;
                st.serialize_field("op", "register")?;
                st.serialize_field("tenant", tenant)?;
                st.serialize_field("platform", platform)?;
                st.serialize_field("master", master)?;
                st.end()
            }
            RequestBody::Update { tenant, scale } => {
                let mut st = serializer.serialize_struct("RequestFrame", 4)?;
                st.serialize_field("seq", &self.seq)?;
                st.serialize_field("op", "update")?;
                st.serialize_field("tenant", tenant)?;
                st.serialize_field("scale", scale)?;
                st.end()
            }
            RequestBody::Rate { tenant } => {
                let mut st = serializer.serialize_struct("RequestFrame", 3)?;
                st.serialize_field("seq", &self.seq)?;
                st.serialize_field("op", "rate")?;
                st.serialize_field("tenant", tenant)?;
                st.end()
            }
            RequestBody::Certify { tenant } => {
                let mut st = serializer.serialize_struct("RequestFrame", 3)?;
                st.serialize_field("seq", &self.seq)?;
                st.serialize_field("op", "certify")?;
                st.serialize_field("tenant", tenant)?;
                st.end()
            }
            RequestBody::Snapshot => {
                let mut st = serializer.serialize_struct("RequestFrame", 2)?;
                st.serialize_field("seq", &self.seq)?;
                st.serialize_field("op", "snapshot")?;
                st.end()
            }
        }
    }
}

impl<'de> Deserialize<'de> for RequestFrame {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<RequestFrame, D::Error> {
        let seq = u64::deserialize(d.clone().take_field("seq")?)?;
        let op = d.clone().take_field("op")?.take_str()?;
        let body = match op.as_str() {
            "register" => RequestBody::Register {
                tenant: String::deserialize(d.clone().take_field("tenant")?)?,
                platform: PlatformSpec::deserialize(d.clone().take_field("platform")?)?,
                master: usize::deserialize(d.take_field("master")?)?,
            },
            "update" => RequestBody::Update {
                tenant: String::deserialize(d.clone().take_field("tenant")?)?,
                scale: ParamScale::deserialize(d.take_field("scale")?)?,
            },
            "rate" => RequestBody::Rate {
                tenant: String::deserialize(d.take_field("tenant")?)?,
            },
            "certify" => RequestBody::Certify {
                tenant: String::deserialize(d.take_field("tenant")?)?,
            },
            "snapshot" => RequestBody::Snapshot,
            other => {
                return Err(serde::de::Error::custom(format!(
                    "unknown request op `{other}`"
                )))
            }
        };
        Ok(RequestFrame { seq, body })
    }
}

impl Serialize for ResponseFrame {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("ResponseFrame", 3)?;
        st.serialize_field("seq", &self.seq)?;
        match &self.body {
            ResponseBody::Replan(v) => {
                st.serialize_field("kind", "replan")?;
                st.serialize_field("body", v)?;
            }
            ResponseBody::Rate(v) => {
                st.serialize_field("kind", "rate")?;
                st.serialize_field("body", v)?;
            }
            ResponseBody::Certified(v) => {
                st.serialize_field("kind", "certified")?;
                st.serialize_field("body", v)?;
            }
            ResponseBody::Snapshot(v) => {
                st.serialize_field("kind", "snapshot")?;
                st.serialize_field("body", v)?;
            }
            ResponseBody::Error(e) => {
                st.serialize_field("kind", "error")?;
                st.serialize_field("body", e)?;
            }
        }
        st.end()
    }
}

impl<'de> Deserialize<'de> for ResponseFrame {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<ResponseFrame, D::Error> {
        let seq = u64::deserialize(d.clone().take_field("seq")?)?;
        let kind = d.clone().take_field("kind")?.take_str()?;
        let body = d.take_field("body")?;
        let body = match kind.as_str() {
            "replan" => ResponseBody::Replan(Replan::deserialize(body)?),
            "rate" => ResponseBody::Rate(RateReport::deserialize(body)?),
            "certified" => ResponseBody::Certified(CertifiedRate::deserialize(body)?),
            "snapshot" => ResponseBody::Snapshot(SnapshotReport::deserialize(body)?),
            "error" => ResponseBody::Error(ServiceError::deserialize(body)?),
            other => {
                return Err(serde::de::Error::custom(format!(
                    "unknown response kind `{other}`"
                )))
            }
        };
        Ok(ResponseFrame { seq, body })
    }
}

// ---------------------------------------------------------------------------
// Frame I/O.
// ---------------------------------------------------------------------------

/// Serialize `msg` and write it as one length-prefixed frame (blocking).
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, msg: &T) -> io::Result<()> {
    let payload = serde_json::to_string(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let bytes = payload.as_bytes();
    w.write_all(&(bytes.len() as u32).to_le_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Encode `msg` as one frame into a byte buffer (for nonblocking writes).
pub fn encode_frame<T: Serialize>(msg: &T) -> io::Result<Vec<u8>> {
    let payload = serde_json::to_string(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload.as_bytes());
    Ok(out)
}

/// Read one frame and deserialize it (blocking). `Ok(None)` on a clean
/// EOF at a frame boundary.
pub fn read_frame<R: Read, T: for<'de> Deserialize<'de>>(r: &mut R) -> io::Result<Option<T>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds limit {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let text = String::from_utf8(payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    serde_json::from_str(&text)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Incremental frame decoder for the nonblocking reactor side: bytes go
/// in as they arrive, complete payloads come out.
#[derive(Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
}

impl FrameBuf {
    /// A fresh, empty decoder.
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Append bytes read off the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame payload, if one has fully arrived.
    /// `Err` on an oversized or non-UTF-8 frame (the connection should
    /// be dropped).
    pub fn next_payload(&mut self) -> Result<Option<String>, String> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME {
            return Err(format!("frame length {len} exceeds limit {MAX_FRAME}"));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let payload = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        String::from_utf8(payload)
            .map(Some)
            .map_err(|e| format!("frame payload is not UTF-8: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_frames_round_trip() {
        let frames = vec![
            RequestFrame {
                seq: 1,
                body: RequestBody::Register {
                    tenant: "acme".into(),
                    platform: PlatformSpec::default(),
                    master: 0,
                },
            },
            RequestFrame {
                seq: 2,
                body: RequestBody::Update {
                    tenant: "acme".into(),
                    scale: ParamScale {
                        w_mult: vec![Ratio::one(), Ratio::new(3, 2)],
                        c_mult: vec![Ratio::new(1, 4)],
                    },
                },
            },
            RequestFrame {
                seq: 3,
                body: RequestBody::Rate {
                    tenant: "acme".into(),
                },
            },
            RequestFrame {
                seq: 4,
                body: RequestBody::Certify {
                    tenant: "acme".into(),
                },
            },
            RequestFrame {
                seq: 5,
                body: RequestBody::Snapshot,
            },
        ];
        for f in frames {
            let wire = serde_json::to_string(&f).unwrap();
            let back: RequestFrame = serde_json::from_str(&wire).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn response_error_codes_round_trip() {
        for err in [
            ServiceError::UnknownTenant("x".into()),
            ServiceError::DuplicateTenant("y".into()),
            ServiceError::Solve("infeasible".into()),
            ServiceError::Disconnected,
        ] {
            let frame = ResponseFrame {
                seq: 9,
                body: ResponseBody::Error(err.clone()),
            };
            let wire = serde_json::to_string(&frame).unwrap();
            let back: ResponseFrame = serde_json::from_str(&wire).unwrap();
            assert_eq!(back.seq, 9);
            match back.body {
                ResponseBody::Error(e) => assert_eq!(e, err),
                other => panic!("wrong body: {other:?}"),
            }
        }
    }

    #[test]
    fn frame_buf_reassembles_split_and_concatenated_frames() {
        let f1 = encode_frame(&RequestFrame {
            seq: 1,
            body: RequestBody::Snapshot,
        })
        .unwrap();
        let f2 = encode_frame(&RequestFrame {
            seq: 2,
            body: RequestBody::Rate { tenant: "t".into() },
        })
        .unwrap();
        let mut wire = f1.clone();
        wire.extend_from_slice(&f2);

        // Feed byte by byte: payloads must pop exactly at frame bounds.
        let mut buf = FrameBuf::new();
        let mut got = Vec::new();
        for b in wire {
            buf.extend(&[b]);
            while let Some(p) = buf.next_payload().unwrap() {
                got.push(p);
            }
        }
        assert_eq!(got.len(), 2);
        let r1: RequestFrame = serde_json::from_str(&got[0]).unwrap();
        let r2: RequestFrame = serde_json::from_str(&got[1]).unwrap();
        assert_eq!(r1.seq, 1);
        assert_eq!(r2.seq, 2);

        // An oversized declared length is rejected, not allocated.
        let mut bad = FrameBuf::new();
        bad.extend(&(u32::MAX).to_le_bytes());
        assert!(bad.next_payload().is_err());
    }
}
