//! Client handles: the in-process [`ServiceClient`] (pushes straight
//! onto the shard queues) and the blocking TCP [`SocketClient`] speaking
//! the [`protocol`](crate::protocol) frames.

use crate::protocol::{
    read_frame, write_frame, RequestBody, RequestFrame, ResponseBody, ResponseFrame,
};
use crate::worker::{Replier, Request, ShardQueue, SnapshotReply};
use crate::{shard_of, CertifiedRate, RateReport, Replan, ServiceError, SnapshotReport};
use ss_platform::{NodeId, Platform, PlatformSpec};
use ss_sim::dynamic::ParamScale;
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;

/// An in-process client handle: requests go straight onto the shard
/// queues, answers come back on a per-request channel. Cheap to clone
/// and safe to hand to other threads.
#[derive(Clone)]
pub struct ServiceClient {
    queues: Vec<Arc<ShardQueue>>,
    coalesce: bool,
}

/// A re-plan still in flight, returned by [`ServiceClient::update_async`].
///
/// Dropping it without [`wait`](PendingReplan::wait)ing is fine — the
/// solve still happens (and may be coalesced with later updates); only
/// the answer is discarded.
pub struct PendingReplan {
    rx: Receiver<Result<Replan, ServiceError>>,
}

impl PendingReplan {
    /// Block until the re-plan (or its error) arrives.
    pub fn wait(self) -> Result<Replan, ServiceError> {
        self.rx.recv().map_err(|_| ServiceError::Disconnected)?
    }
}

impl ServiceClient {
    pub(crate) fn new(queues: Vec<Arc<ShardQueue>>, coalesce: bool) -> ServiceClient {
        ServiceClient { queues, coalesce }
    }

    fn push(&self, tenant: &str, req: Request) -> Result<(), ServiceError> {
        let shard = shard_of(tenant, self.queues.len());
        self.queues[shard]
            .push(req, self.coalesce)
            .map_err(|_| ServiceError::Disconnected)
    }

    /// Register a tenant (platform + master) and compute its initial
    /// plan. Fails on duplicate ids.
    pub fn register(
        &self,
        tenant: impl Into<String>,
        platform: Platform,
        master: NodeId,
    ) -> Result<Replan, ServiceError> {
        let tenant = tenant.into();
        let (tx, rx) = channel();
        self.push(
            &tenant.clone(),
            Request::Register {
                tenant,
                platform,
                master,
                reply: Replier::Sync(tx),
            },
        )?;
        rx.recv().map_err(|_| ServiceError::Disconnected)?
    }

    /// Report drifted parameters (relative to the registered platform)
    /// and re-plan — warm-started from the tenant's previous basis.
    pub fn update(
        &self,
        tenant: impl Into<String>,
        scale: ParamScale,
    ) -> Result<Replan, ServiceError> {
        self.update_async(tenant, scale)?.wait()
    }

    /// Enqueue an update without blocking on the answer. Back-to-back
    /// async updates for one tenant are what enqueue-time coalescing
    /// merges: all pending callers share the single re-plan (see
    /// `Replan::coalesced`).
    pub fn update_async(
        &self,
        tenant: impl Into<String>,
        scale: ParamScale,
    ) -> Result<PendingReplan, ServiceError> {
        let tenant = tenant.into();
        let (tx, rx) = channel();
        self.push(
            &tenant.clone(),
            Request::Update {
                tenant,
                scale,
                replies: vec![Replier::Sync(tx)],
            },
        )?;
        Ok(PendingReplan { rx })
    }

    /// The tenant's current steady-state rate (no solve).
    pub fn rate(&self, tenant: impl Into<String>) -> Result<RateReport, ServiceError> {
        let tenant = tenant.into();
        let (tx, rx) = channel();
        self.push(
            &tenant.clone(),
            Request::Rate {
                tenant,
                reply: Replier::Sync(tx),
            },
        )?;
        rx.recv().map_err(|_| ServiceError::Disconnected)?
    }

    /// Exact re-certification checkpoint: re-solve the tenant's current
    /// platform with the exact backend (warm-started from the same
    /// snapshot) and verify the LP-duality certificate.
    pub fn certify(&self, tenant: impl Into<String>) -> Result<CertifiedRate, ServiceError> {
        let tenant = tenant.into();
        let (tx, rx) = channel();
        self.push(
            &tenant.clone(),
            Request::Certify {
                tenant,
                reply: Replier::Sync(tx),
            },
        )?;
        rx.recv().map_err(|_| ServiceError::Disconnected)?
    }

    /// Journal every tenant to the persistence directory now. Fans out
    /// to all workers and sums their counts; fails when the service has
    /// no `persist_dir`.
    pub fn snapshot(&self) -> Result<SnapshotReport, ServiceError> {
        let mut pending = Vec::with_capacity(self.queues.len());
        for q in &self.queues {
            let (tx, rx) = channel();
            q.push(
                Request::Snapshot {
                    reply: SnapshotReply::Sync(tx),
                },
                false,
            )
            .map_err(|_| ServiceError::Disconnected)?;
            pending.push(rx);
        }
        let mut persisted = 0;
        for rx in pending {
            let report = rx.recv().map_err(|_| ServiceError::Disconnected)??;
            persisted += report.persisted;
        }
        Ok(SnapshotReport { persisted })
    }
}

/// Why a socket request failed.
#[derive(Debug)]
pub enum SocketError {
    /// Transport failure.
    Io(io::Error),
    /// The server answered with a service-level error.
    Service(ServiceError),
    /// The server answered with a frame the client can't interpret
    /// (wrong body kind for the request).
    Protocol(String),
}

impl fmt::Display for SocketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocketError::Io(e) => write!(f, "socket i/o: {e}"),
            SocketError::Service(e) => write!(f, "service: {e}"),
            SocketError::Protocol(msg) => write!(f, "protocol: {msg}"),
        }
    }
}

impl std::error::Error for SocketError {}

impl From<io::Error> for SocketError {
    fn from(e: io::Error) -> SocketError {
        SocketError::Io(e)
    }
}

impl From<ServiceError> for SocketError {
    fn from(e: ServiceError) -> SocketError {
        SocketError::Service(e)
    }
}

/// A blocking TCP client for the frame protocol served by
/// [`Service::listen`](crate::Service::listen).
///
/// Requests carry a sequence number; the server may answer out of order
/// (workers of different shards finish independently), so the client
/// stashes mismatched responses until their turn comes.
pub struct SocketClient {
    stream: TcpStream,
    next_seq: u64,
    stashed: HashMap<u64, ResponseBody>,
}

impl SocketClient {
    /// Connect to a serving reactor.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<SocketClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(SocketClient {
            stream,
            next_seq: 0,
            stashed: HashMap::new(),
        })
    }

    fn call(&mut self, body: RequestBody) -> Result<ResponseBody, SocketError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        write_frame(&mut self.stream, &RequestFrame { seq, body })?;
        if let Some(body) = self.stashed.remove(&seq) {
            return Ok(body);
        }
        loop {
            let frame: ResponseFrame = read_frame(&mut self.stream)?.ok_or_else(|| {
                SocketError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ))
            })?;
            if frame.seq == seq {
                return Ok(frame.body);
            }
            self.stashed.insert(frame.seq, frame.body);
        }
    }

    fn expect_replan(body: ResponseBody) -> Result<Replan, SocketError> {
        match body {
            ResponseBody::Replan(r) => Ok(r),
            ResponseBody::Error(e) => Err(e.into()),
            other => Err(SocketError::Protocol(format!(
                "expected a replan body, got {other:?}"
            ))),
        }
    }

    /// Register a tenant over the wire; the platform travels as a
    /// [`PlatformSpec`] and is re-validated server-side.
    pub fn register(
        &mut self,
        tenant: impl Into<String>,
        platform: &Platform,
        master: NodeId,
    ) -> Result<Replan, SocketError> {
        let body = self.call(RequestBody::Register {
            tenant: tenant.into(),
            platform: PlatformSpec::from_platform(platform),
            master: master.index(),
        })?;
        Self::expect_replan(body)
    }

    /// Report drifted parameters and re-plan.
    pub fn update(
        &mut self,
        tenant: impl Into<String>,
        scale: ParamScale,
    ) -> Result<Replan, SocketError> {
        let body = self.call(RequestBody::Update {
            tenant: tenant.into(),
            scale,
        })?;
        Self::expect_replan(body)
    }

    /// The tenant's current steady-state rate (no solve).
    pub fn rate(&mut self, tenant: impl Into<String>) -> Result<RateReport, SocketError> {
        match self.call(RequestBody::Rate {
            tenant: tenant.into(),
        })? {
            ResponseBody::Rate(r) => Ok(r),
            ResponseBody::Error(e) => Err(e.into()),
            other => Err(SocketError::Protocol(format!(
                "expected a rate body, got {other:?}"
            ))),
        }
    }

    /// Exact duality-certified checkpoint.
    pub fn certify(&mut self, tenant: impl Into<String>) -> Result<CertifiedRate, SocketError> {
        match self.call(RequestBody::Certify {
            tenant: tenant.into(),
        })? {
            ResponseBody::Certified(c) => Ok(c),
            ResponseBody::Error(e) => Err(e.into()),
            other => Err(SocketError::Protocol(format!(
                "expected a certified body, got {other:?}"
            ))),
        }
    }

    /// Journal every tenant to the persistence directory now.
    pub fn snapshot(&mut self) -> Result<SnapshotReport, SocketError> {
        match self.call(RequestBody::Snapshot)? {
            ResponseBody::Snapshot(s) => Ok(s),
            ResponseBody::Error(e) => Err(e.into()),
            other => Err(SocketError::Protocol(format!(
                "expected a snapshot body, got {other:?}"
            ))),
        }
    }
}
