//! Quickstart: solve, reconstruct, and validate a steady-state schedule on
//! the paper's Figure 1 platform.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use steadystate::core::master_slave;
use steadystate::platform::paper;
use steadystate::schedule::reconstruct_master_slave;
use steadystate::sim::simulate_master_slave;

fn main() {
    // The 6-processor platform of Figure 1, master P1.
    let (g, master) = paper::fig1();
    println!(
        "Platform: {} nodes, {} directed links",
        g.num_nodes(),
        g.num_edges()
    );
    println!("{}", g.to_dot());

    // §3.1 — the SSMS linear program: maximize sum(alpha_i / w_i).
    let sol = master_slave::solve(&g, master).expect("SSMS LP solves");
    println!(
        "Optimal steady-state throughput ntask(G) = {} tasks/time-unit",
        sol.ntask
    );
    println!("  (≈ {:.4} in floating point)", sol.ntask.to_f64());
    for n in g.nodes() {
        println!(
            "  {}: computes {} of the time (w = {}), rate {}",
            n.name,
            sol.alpha[n.id.index()],
            n.w,
            sol.compute_rate(&g, n.id),
        );
    }

    // §4.1 — reconstruct the compact periodic schedule.
    let sched = reconstruct_master_slave(&g, &sol);
    sched.check(&g).expect("schedule is valid");
    println!(
        "\nPeriod T = {} time units; {} tasks per period; {} communication rounds",
        sched.period,
        sched.work_per_period(),
        sched.decomposition.num_rounds(),
    );
    for (i, round) in sched.decomposition.rounds.iter().enumerate() {
        let names: Vec<String> = round
            .transfers
            .iter()
            .map(|&e| {
                let er = g.edge(e);
                format!("{}→{}", g.node(er.src).name, g.node(er.dst).name)
            })
            .collect();
        println!(
            "  round {i}: {} time units, transfers [{}]",
            round.duration,
            names.join(", ")
        );
    }

    // Execute the schedule and watch the pipeline fill.
    let run = simulate_master_slave(&g, master, &sched, 12);
    println!("\nPer-period completions (plan = {}):", run.plan_per_period);
    for (p, done) in run.per_period.iter().enumerate() {
        println!("  period {p}: {done}");
    }
    println!(
        "Steady state reached after {} warm-up period(s); total {} tasks.",
        run.steady_after.expect("steady state reached"),
        run.total()
    );
}
