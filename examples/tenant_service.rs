//! The multi-tenant online scheduling service: several applications
//! share the serving layer, each keeping a hot warm-started re-solve
//! session alive between parameter updates.
//!
//! Each tenant registers a platform + master, then reports drifting
//! resource performance (NWS-style observations) and gets a re-plan back
//! — warm-started from its previous optimal basis, so a re-plan costs a
//! handful of pivots. An exact duality-certified checkpoint is available
//! on demand.
//!
//! ```sh
//! cargo run --release --example tenant_service
//! ```

use steadystate::num::Ratio;
use steadystate::platform::topo;
use steadystate::service::{Service, ServiceConfig};
use steadystate::sim::dynamic::ParamScale;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let service = Service::spawn(ServiceConfig {
        workers: 3,
        ..ServiceConfig::default()
    });
    let client = service.client();
    println!(
        "service up: {} workers, tenants sharded by id\n",
        service.num_workers()
    );

    // Register four tenants with platforms of different sizes.
    let mut tenants = Vec::new();
    for (i, p) in [8usize, 10, 12, 14].iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(40 + i as u64);
        let (g, m) = topo::random_connected(&mut rng, *p, 0.3, &topo::ParamRange::default());
        let id = format!("app-{i}");
        let plan = client.register(id.clone(), g.clone(), m).expect("register");
        println!(
            "registered {id:>6} (p = {p:2}): rate {:.4} tasks/u ({}, {} pivots, {:.2} ms)",
            plan.throughput, plan.outcome, plan.iterations, plan.solve_ms
        );
        tenants.push((id, g));
    }

    // Three rounds of observed drift per tenant: each round a couple of
    // machines get loaded or links congest, and the tenant re-plans.
    println!("\nround | tenant |    rate | path          | pivots |    ms");
    println!("------+--------+---------+---------------+--------+------");
    let mut drift_rng = StdRng::seed_from_u64(99);
    for round in 0..3 {
        for (id, g) in &tenants {
            let mut scale = ParamScale::nominal(g);
            for w in scale.w_mult.iter_mut() {
                if drift_rng.gen_bool(0.3) {
                    *w = Ratio::new(drift_rng.gen_range(8..=20), 12);
                }
            }
            let re = client.update(id.clone(), scale).expect("re-plan");
            println!(
                " {round:4} | {id:>6} | {:7.4} | {:>13} | {:6} | {:5.2}",
                re.throughput, re.outcome, re.iterations, re.solve_ms
            );
        }
    }

    // Rate queries are free (no solve), and exact certification is an
    // on-demand checkpoint.
    println!();
    for (id, _) in &tenants {
        let rate = client.rate(id.clone()).expect("rate");
        println!(
            "{id:>6}: {:.4} tasks/u after {} solves ({:.0}% warm-started)",
            rate.throughput,
            rate.solves,
            100.0 * rate.warm_fraction
        );
    }
    let cert = client.certify(tenants[0].0.clone()).expect("certify");
    println!(
        "\nexact checkpoint for {}: rate {} (duality-certified), f64 gap {:.2e}",
        cert.tenant, cert.exact, cert.f64_gap
    );
    service.shutdown();
    println!("service drained and joined.");
}
