//! The multi-tenant online scheduling service: several applications
//! share the serving layer, each keeping a hot warm-started re-solve
//! session alive between parameter updates.
//!
//! Each tenant registers a platform + master, then reports drifting
//! resource performance (NWS-style observations) and gets a re-plan back
//! — warm-started from its previous optimal basis, so a re-plan costs a
//! handful of pivots. On top of that this example drives the evented
//! layer's operational levers end to end: a burst of async updates
//! coalesced into one solve, per-tenant deadlines serving the last good
//! plan when solves run long, and warm snapshot persistence carrying the
//! whole fleet across a service restart with zero cold solves. An exact
//! duality-certified checkpoint is available on demand.
//!
//! ```sh
//! cargo run --release --example tenant_service
//! ```

use steadystate::num::Ratio;
use steadystate::platform::topo;
use steadystate::service::{Service, ServiceConfig};
use steadystate::sim::dynamic::ParamScale;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let persist_dir =
        std::env::temp_dir().join(format!("ss-tenant-service-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&persist_dir);
    let config = ServiceConfig::builder()
        .workers(3)
        .deadline_ms(50.0)
        .persist_dir(persist_dir.clone())
        .build()
        .expect("valid service config");
    let service = Service::spawn(config.clone());
    let client = service.client();
    println!(
        "service up: {} workers, tenants sharded by id, 50ms deadline, snapshots in {}\n",
        service.num_workers(),
        persist_dir.display()
    );

    // Register four tenants with platforms of different sizes.
    let mut tenants = Vec::new();
    for (i, p) in [8usize, 10, 12, 14].iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(40 + i as u64);
        let (g, m) = topo::random_connected(&mut rng, *p, 0.3, &topo::ParamRange::default());
        let id = format!("app-{i}");
        let plan = client.register(id.clone(), g.clone(), m).expect("register");
        println!(
            "registered {id:>6} (p = {p:2}): rate {:.4} tasks/u ({}, {} pivots, {:.2} ms)",
            plan.throughput, plan.outcome, plan.iterations, plan.solve_ms
        );
        tenants.push((id, g));
    }

    // Three rounds of observed drift per tenant: each round a couple of
    // machines get loaded or links congest, and the tenant re-plans.
    println!("\nround | tenant |    rate | path          | pivots |    ms");
    println!("------+--------+---------+---------------+--------+------");
    let mut drift_rng = StdRng::seed_from_u64(99);
    for round in 0..3 {
        for (id, g) in &tenants {
            let mut scale = ParamScale::nominal(g);
            for w in scale.w_mult.iter_mut() {
                if drift_rng.gen_bool(0.3) {
                    *w = Ratio::new(drift_rng.gen_range(8..=20), 12);
                }
            }
            let re = client.update(id.clone(), scale).expect("re-plan");
            println!(
                " {round:4} | {id:>6} | {:7.4} | {:>13} | {:6} | {:5.2}",
                re.throughput, re.outcome, re.iterations, re.solve_ms
            );
        }
    }

    // A burst of async updates — observations arriving faster than
    // solves. Enqueue-time coalescing folds the pending ones into a
    // single re-plan (latest drift wins); every caller still gets an
    // answer, sharing the solve.
    let (burst_id, burst_g) = &tenants[0];
    let mut pending = Vec::new();
    for k in 0..4i64 {
        let drift = ParamScale::nominal(burst_g)
            .with_node(steadystate::platform::NodeId(1), Ratio::new(12 + k, 12));
        pending.push(
            client
                .update_async(burst_id.clone(), drift)
                .expect("enqueue"),
        );
    }
    println!("\nburst of {} updates on {burst_id}:", pending.len());
    for p in pending {
        let re = p.wait().expect("burst re-plan");
        println!(
            "  answered: rate {:.4} ({}, {} caller(s) coalesced{})",
            re.throughput,
            re.outcome,
            re.coalesced,
            if re.stale { ", stale-served" } else { "" }
        );
    }

    // Rate queries are free (no solve), and exact certification is an
    // on-demand checkpoint.
    println!();
    for (id, _) in &tenants {
        let rate = client.rate(id.clone()).expect("rate");
        println!(
            "{id:>6}: {:.4} tasks/u after {} answers / {} LP solves \
             ({:.0}% warm, {} coalesced, {} stale-served)",
            rate.throughput,
            rate.solves,
            rate.lp_solves,
            100.0 * rate.warm_fraction,
            rate.coalesced,
            rate.stale_served
        );
    }
    let cert = client.certify(tenants[0].0.clone()).expect("certify");
    println!(
        "\nexact checkpoint for {}: rate {} (duality-certified), f64 gap {:.2e}",
        cert.tenant, cert.exact, cert.f64_gap
    );

    // Kill the service and restart it from the journaled snapshots: the
    // fleet comes back warm — the first re-plan of every tenant reuses
    // the persisted basis, zero cold solves.
    let snap = client.snapshot().expect("snapshot");
    service.shutdown();
    println!(
        "\nservice stopped ({} tenants journaled); restarting from snapshots...",
        snap.persisted
    );
    let service = Service::spawn(config);
    let client = service.client();
    for (id, g) in &tenants {
        let drift =
            ParamScale::nominal(g).with_node(steadystate::platform::NodeId(0), Ratio::new(13, 12));
        let re = client
            .update(id.clone(), drift)
            .expect("post-restart re-plan");
        assert!(
            re.outcome.used_warm_basis(),
            "{id}: restart re-plan was not warm"
        );
        println!(
            "  {id:>6} re-planned {:>13} after restart: rate {:.4}",
            re.outcome.to_string(),
            re.throughput
        );
    }
    service.shutdown();
    let _ = std::fs::remove_dir_all(&persist_dir);
    println!("service drained and joined.");
}
