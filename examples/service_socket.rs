//! Talking to the scheduling service over real sockets.
//!
//! [`Service::listen`] puts a nonblocking reactor thread in front of the
//! worker shards; any process that can open a TCP connection and speak
//! the length-prefixed JSON frame protocol can then register tenants and
//! re-plan. This example runs the server and a [`SocketClient`] in one
//! process for convenience, but nothing ties them together: the client
//! sees only bytes on the wire.
//!
//! ```sh
//! cargo run --release --example service_socket
//! ```

use steadystate::num::Ratio;
use steadystate::platform::topo;
use steadystate::service::{Service, ServiceConfig, SocketClient, SocketError};
use steadystate::sim::dynamic::ParamScale;

use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let service = Service::spawn(ServiceConfig::builder().workers(2).build().unwrap());
    let server = service.listen("127.0.0.1:0").expect("bind reactor");
    println!("serving the frame protocol on {}\n", server.addr());

    let mut client = SocketClient::connect(server.addr()).expect("connect");

    // Register two tenants over the wire. The platform travels as a
    // validated spec (nodes, edge list, rational costs) inside the JSON
    // frame and is re-checked server-side.
    let mut fleet = Vec::new();
    for (i, p) in [9usize, 13].iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(7 + i as u64);
        let (g, m) = topo::random_connected(&mut rng, *p, 0.3, &topo::ParamRange::default());
        let id = format!("wire-{i}");
        let plan = client.register(id.clone(), &g, m).expect("register");
        println!(
            "registered {id} (p = {p:2}) over TCP: rate {:.4} tasks/u ({}, {:.2} ms)",
            plan.throughput, plan.outcome, plan.solve_ms
        );
        fleet.push((id, g));
    }

    // Drifted observations and re-plans, all framed over the socket.
    println!("\ndrift rounds:");
    for round in 0..3i64 {
        for (id, g) in &fleet {
            let drift = ParamScale::nominal(g)
                .with_node(steadystate::platform::NodeId(2), Ratio::new(10 + round, 12));
            let re = client.update(id.clone(), drift).expect("re-plan");
            println!(
                "  {id}: rate {:.4} ({}, {} pivots, {:.2} ms)",
                re.throughput, re.outcome, re.iterations, re.solve_ms
            );
        }
    }

    // Rate and certification come back as typed frames too.
    for (id, _) in &fleet {
        let rate = client.rate(id.clone()).expect("rate");
        let cert = client.certify(id.clone()).expect("certify");
        println!(
            "\n{id}: {:.4} tasks/u after {} answers / {} LP solves ({:.0}% warm)\n\
             {id}: exact rate {} (duality-certified, f64 gap {:.2e})",
            rate.throughput,
            rate.solves,
            rate.lp_solves,
            100.0 * rate.warm_fraction,
            cert.exact,
            cert.f64_gap
        );
    }

    // Service errors arrive as typed error frames, not dropped
    // connections.
    match client.rate("nobody-home") {
        Err(SocketError::Service(e)) => println!("\nasking for an unknown tenant: {e}"),
        other => panic!("expected a typed service error, got {other:?}"),
    }

    server.stop();
    service.shutdown();
    println!("reactor stopped, service drained and joined.");
}
