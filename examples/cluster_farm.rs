//! Task farming on a two-level "cluster of clusters": the workload that
//! motivates the paper's introduction — a master with a huge pool of
//! independent tasks, heterogeneous clusters behind routing-only
//! front-ends, WAN links an order of magnitude slower than LAN links.
//!
//! Compares the steady-state schedule against the greedy demand-driven
//! protocol and HEFT batch scheduling on the same platform (tree-shaped,
//! so every baseline applies).
//!
//! ```sh
//! cargo run --release --example cluster_farm
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use steadystate::baselines::{heft_batch, simulate_tree_greedy, ServiceOrder};
use steadystate::core::master_slave;
use steadystate::num::Ratio;
use steadystate::platform::topo;
use steadystate::schedule::reconstruct_master_slave;
use steadystate::sim::simulate_master_slave;

fn main() {
    let mut rng = StdRng::seed_from_u64(2004);
    let params = topo::ParamRange {
        w_range: (2, 8),
        c_range: (1, 2),
        max_denominator: 1,
    };
    let (g, master) = topo::two_level_clusters(&mut rng, 3, 4, 8, &params);
    println!(
        "Platform: {} nodes ({} routers with w = +inf), {} links",
        g.num_nodes(),
        g.nodes().filter(|n| !n.w.is_finite()).count(),
        g.num_edges()
    );

    // Steady state: LP bound + reconstructed schedule, executed.
    let sol = master_slave::solve(&g, master).expect("SSMS solves");
    let sched = reconstruct_master_slave(&g, &sol);
    sched.check(&g).expect("valid schedule");
    println!(
        "\nSteady-state LP: ntask(G) = {} ≈ {:.4} tasks/unit",
        sol.ntask,
        sol.ntask.to_f64()
    );
    println!(
        "period T = {}, {} tasks/period",
        sched.period,
        sched.work_per_period()
    );

    let horizon_periods = 40usize;
    let run = simulate_master_slave(&g, master, &sched, horizon_periods);
    let k = &Ratio::from(sched.period.clone()) * &Ratio::from(horizon_periods);
    println!(
        "executed {} periods (K = {} time units): {} tasks (bound K·ntask = {})",
        horizon_periods,
        k,
        run.total(),
        (&k * &sol.ntask).floor(),
    );

    // Baselines on the same horizon: give each the same wall-clock K and
    // count completions. A pool of 2·K·ntask tasks is inexhaustible within
    // K for any schedule (nothing can beat the LP rate).
    let n_big = (&(&k * &sol.ntask) * &Ratio::from_int(2))
        .ceil()
        .to_u64()
        .unwrap();
    println!("\nWithin the same K = {k} time units (pool of {n_big} tasks):");
    println!(
        "  steady-state periodic : {} tasks",
        run.completed_within(&k)
    );
    for order in [
        ServiceOrder::Fifo,
        ServiceOrder::RoundRobin,
        ServiceOrder::BandwidthCentric,
    ] {
        let out = simulate_tree_greedy(&g, master, n_big, order).expect("tree platform");
        println!("  greedy {:16?}: {} tasks", order, out.completed_by(&k));
    }
    let heft = heft_batch(&g, master, n_big);
    println!("  HEFT batch            : {} tasks", heft.completed_by(&k));

    println!(
        "\nThe LP upper bound K·ntask = {} dominates every schedule, and the\n\
         reconstructed periodic schedule matches it up to the warm-up constant.",
        (&k * &sol.ntask).floor()
    );
}
