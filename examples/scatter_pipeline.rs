//! Pipelined scatter (§3.2): a data-distribution service that repeatedly
//! sends distinct chunks to a set of consumer nodes — think a parameter
//! server pushing distinct shards every iteration.
//!
//! Solves the SSPS LP on a random heterogeneous platform, reconstructs the
//! periodic schedule, validates it in simulation, and compares against the
//! flat-tree scatter an MPI implementation would use.
//!
//! ```sh
//! cargo run --release --example scatter_pipeline
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use steadystate::baselines::collectives::flat_tree_scatter_rate;
use steadystate::core::scatter;
use steadystate::platform::topo;
use steadystate::schedule::reconstruct_collective;
use steadystate::sim::simulate_collective;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let (g, source) = topo::random_connected(&mut rng, 8, 0.3, &topo::ParamRange::default());
    let targets = topo::pick_targets(&mut rng, &g, source, 4);
    println!(
        "Platform: {} nodes / {} links; source {}; targets {:?}",
        g.num_nodes(),
        g.num_edges(),
        g.node(source).name,
        targets
            .iter()
            .map(|&t| g.node(t).name.to_string())
            .collect::<Vec<_>>(),
    );

    // §3.2 — the SSPS LP.
    let sol = scatter::solve(&g, source, &targets).expect("SSPS solves");
    println!(
        "\nsteady-state scatter throughput TP = {} ops/time-unit",
        sol.throughput
    );

    // How each target's messages are routed (possibly multi-path!).
    for (k, &t) in targets.iter().enumerate() {
        println!("routes for {}:", g.node(t).name);
        for e in g.edges() {
            let f = &sol.flows[k][e.id.index()];
            if !f.is_zero() {
                println!(
                    "  {} → {} carries {}",
                    g.node(e.src).name,
                    g.node(e.dst).name,
                    f
                );
            }
        }
    }

    // §4.1 — reconstruction + execution.
    let sched = reconstruct_collective(&g, &sol).expect("sum-coupled reconstructs");
    sched.check(&g).expect("valid");
    println!(
        "\nperiod T = {}; {} communication rounds; {} deliveries per period",
        sched.period,
        sched.decomposition.num_rounds(),
        sched.work_per_period()
    );
    let run = simulate_collective(&g, source, &targets, &sol.flows, &sched, 30);
    println!(
        "simulated 30 periods: steady after {} warm-up period(s); plan met: {}",
        run.steady_after.expect("steady"),
        run.per_period.last().unwrap() == &run.plan_per_period,
    );

    // Baseline: one fixed cheapest-path tree per target.
    let flat = flat_tree_scatter_rate(&g, source, &targets).expect("reachable");
    println!("\nflat-tree scatter rate: {} ops/time-unit", flat);
    let gain = &sol.throughput / &flat;
    println!(
        "steady-state gain over the fixed tree: ×{:.3}",
        gain.to_f64()
    );
    assert!(sol.throughput >= flat);
}
