//! Dynamic adaptation (§5.5): a grid whose resources drift over time —
//! machines get loaded by other users, links get congested. The
//! steady-state framework adapts by re-solving the LP each phase from
//! observed performance ("use the past to predict the future").
//!
//! Compares three policies through a day of simulated drift:
//! static (plan once), adaptive (re-plan from last phase's observations),
//! omniscient (re-plan with perfect knowledge).
//!
//! The re-solving policies run through **warm-started re-solve
//! sessions**: from phase 2 on, each re-plan reuses the previous phase's
//! optimal basis instead of solving from scratch — the `lp` column below
//! shows the per-phase path (cold / warm / repaired / cold-fallback) and
//! pivot count of the adaptive session.
//!
//! ```sh
//! cargo run --release --example adaptive_grid
//! ```

use steadystate::num::Ratio;
use steadystate::platform::paper;
use steadystate::sim::dynamic::{mean_throughput, simulate_policies, ParamScale};

fn main() {
    let (g, master) = paper::fig1();

    // A drift scenario: P2's machine gets progressively loaded, then the
    // P1-P3 link congests, then everything returns to nominal.
    let nominal = ParamScale::nominal(&g);
    let p2 = g.find_node("P2").unwrap();
    let p1p3 = g
        .edge_between(g.find_node("P1").unwrap(), g.find_node("P3").unwrap())
        .unwrap();
    let phases = vec![
        nominal.clone(),
        nominal.clone(),
        ParamScale::nominal(&g).with_node(p2, Ratio::from_int(3)),
        ParamScale::nominal(&g).with_node(p2, Ratio::from_int(6)),
        ParamScale::nominal(&g).with_node(p2, Ratio::from_int(6)),
        ParamScale::nominal(&g)
            .with_node(p2, Ratio::from_int(6))
            .with_edge(p1p3, Ratio::from_int(4)),
        ParamScale::nominal(&g)
            .with_node(p2, Ratio::from_int(6))
            .with_edge(p1p3, Ratio::from_int(4)),
        nominal.clone(),
        nominal.clone(),
    ];

    let reports = simulate_policies(&g, master, &phases).expect("policies simulate");
    println!("phase |   static | adaptive | omniscient | adaptive lp (path, pivots)");
    println!("------+----------+----------+------------+---------------------------");
    let mut warm_pivots = 0usize;
    for (t, r) in reports.iter().enumerate() {
        println!(
            "  {t:3} | {:8.4} | {:8.4} | {:10.4} | {:>13}, {:3}",
            r.static_thr.to_f64(),
            r.adaptive_thr.to_f64(),
            r.omniscient_thr.to_f64(),
            r.adaptive.outcome.to_string(),
            r.adaptive.iterations,
        );
        if t > 0 {
            warm_pivots += r.adaptive.iterations;
        }
    }
    let s = mean_throughput(&reports, |r| &r.static_thr);
    let a = mean_throughput(&reports, |r| &r.adaptive_thr);
    let o = mean_throughput(&reports, |r| &r.omniscient_thr);
    println!("------+----------+----------+------------+---------------------------");
    println!(
        " mean | {:8.4} | {:8.4} | {:10.4} |",
        s.to_f64(),
        a.to_f64(),
        o.to_f64()
    );
    println!(
        "\nadaptive recovers {:.1}% of the omniscient throughput; static only {:.1}%.",
        100.0 * (&a / &o).to_f64(),
        100.0 * (&s / &o).to_f64(),
    );
    println!(
        "warm-started re-plans cost {warm_pivots} pivots total across {} phases \
         (a cold solve costs {} pivots *per phase*).",
        reports.len() - 1,
        reports[0].adaptive.iterations,
    );
    assert!(a >= s);
}
