//! The §4.3 multicast counterexample (Figures 2 and 3), end to end.
//!
//! The max-coupled LP says the Figure 2 platform multicasts one message
//! per time unit to {P5, P6}. The paper shows no schedule achieves it:
//! the two route families both need the slow edge (P3, P4). This example
//! recomputes the bound, prints the per-edge flows of Figure 3(a–c),
//! exhibits the conflict of Figure 3(d), and contrasts with the
//! achievable sum-coupled throughput.
//!
//! ```sh
//! cargo run --release --example multicast_counterexample
//! ```

use steadystate::core::multicast;
use steadystate::num::Ratio;
use steadystate::platform::paper;

fn main() {
    let (g, source, targets) = paper::fig2_multicast();
    println!("Figure 2 platform: source P0, targets P5 and P6");
    println!("{}", g.to_dot());

    let (lo, hi) = multicast::bounds(&g, source, &targets).expect("LPs solve");

    println!("max-coupled LP bound (optimistic): TP = {}", hi.throughput);
    assert_eq!(
        hi.throughput,
        Ratio::one(),
        "the paper's bound is exactly 1"
    );

    // Figure 3(a)/(b): per-edge flows for each target.
    for (k, &t) in targets.iter().enumerate() {
        println!(
            "\nFlows of messages targeting {} (Fig. 3{})",
            g.node(t).name,
            ['a', 'b'][k]
        );
        for e in g.edges() {
            let f = &hi.flows[k][e.id.index()];
            if !f.is_zero() {
                println!("  {} → {}: {}", g.node(e.src).name, g.node(e.dst).name, f);
            }
        }
    }

    // Figure 3(c): aggregate transfers.
    println!("\nTotal messages per edge (Fig. 3c)");
    for e in g.edges() {
        let total = hi.total_edge_rate(e.id);
        if !total.is_zero() {
            println!(
                "  {} → {}: {}",
                g.node(e.src).name,
                g.node(e.dst).name,
                total
            );
        }
    }

    // Figure 3(d): the conflict. Under max coupling the slow edge (P3,P4)
    // is billed max(f5, f6) * c = 1/2 * 2 = 1 (feasible). But P0's two
    // out-edges are saturated, so each carries only half the instances of
    // each stream — hence the P5-messages crossing P3->P4 (label b, routed
    // via P2) and the P6-messages crossing it (label a, routed via P1) are
    // DIFFERENT multicast instances. No transmission can serve both: a
    // real schedule pays (f5 + f6) * c = 2 > 1 time units per time unit.
    let p3 = g.find_node("P3").unwrap();
    let p4 = g.find_node("P4").unwrap();
    let slow = g.edge_between(p3, p4).unwrap();
    let c = g.edge(slow).c.clone();
    let f5 = &hi.flows[0][slow.index()];
    let f6 = &hi.flows[1][slow.index()];
    let billed = &f5.clone().max(f6.clone()) * &c;
    let real = &(f5 + f6) * &c;
    println!("\nEdge P3→P4 (c = {c}):");
    println!("  max-LP bills     max({f5}, {f6}) · {c} = {billed}  (≤ 1, looks fine)");
    println!("  a real schedule needs ({f5} + {f6}) · {c} = {real}  (> 1: impossible!)");
    assert!(real > Ratio::one());

    println!(
        "\nachievable sum-coupled LP (treat the multicast as a scatter): TP = {}",
        lo.throughput
    );
    assert!(lo.throughput < hi.throughput);

    // Between the two: fractional tree packing (achievable, reconstructible).
    let pack = steadystate::core::multicast_trees::solve_tree_packing(&g, source, &targets)
        .expect("packing solves");
    println!(
        "fractional tree packing over {} trees: TP = {} — achieved:",
        pack.trees.len(),
        pack.rate
    );
    for (t, x) in &pack.trees {
        let edges: Vec<String> = t
            .edges
            .iter()
            .map(|&e| {
                let er = g.edge(e);
                format!("{}→{}", g.node(er.src).name, g.node(er.dst).name)
            })
            .collect();
        println!("  rate {x}: [{}]", edges.join(", "));
    }
    let sched = steadystate::schedule::reconstruct_tree_packing(&g, &pack);
    let run = steadystate::sim::simulate_tree_packing(&g, source, &targets, &pack, &sched, 20);
    println!(
        "  reconstructed (T = {}) and simulated: plan met = {}",
        sched.period,
        run.per_period.last().unwrap() == &run.plan_per_period
    );
    println!(
        "\ngap: {} (achieved) <= true multicast optimum <= {} (unachievable bound) — and §4.3\n\
         proves pinning down the optimum is NP-hard.",
        pack.rate, hi.throughput
    );
}
