//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *small* slice of the `rand 0.8` API its sources
//! actually use — `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool}` over integer ranges, and
//! `seq::SliceRandom::shuffle` — implemented on top of a deterministic
//! xoshiro256** generator.
//!
//! Determinism notes: all platform generators and property tests in this
//! workspace only rely on *reproducibility for a fixed seed within one
//! build*, never on matching the upstream `StdRng` stream, so a different
//! (but stable) PRNG is a faithful substitute.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core randomness source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-width byte array upstream; mirrored here).
    type Seed;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` via splitmix64 expansion (the upstream contract:
    /// distinct `u64` seeds give independent streams).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive integer ranges).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        // 53 uniform mantissa bits, exactly representable in f64.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one sample; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let draw = draw_u128(rng) % width;
                ((self.start as $wide as u128).wrapping_add(draw)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi as $wide).wrapping_sub(lo as $wide) as u128;
                if width == u128::MAX {
                    return draw_u128(rng) as $t;
                }
                let draw = draw_u128(rng) % (width + 1);
                ((lo as $wide as u128).wrapping_add(draw)) as $t
            }
        }
    )*};
}

impl_sample_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize, u128 => u128,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize, i128 => u128,
);

fn draw_u128<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
    ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s.iter().all(|&x| x == 0) {
                s = [1, 2, 3, 4]; // xoshiro must not start at the all-zero state
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = StdRng::splitmix64(&mut sm);
            }
            if s.iter().all(|&x| x == 0) {
                s = [1, 2, 3, 4];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let x = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&x));
            let y = rng.gen_range(1i64..=3);
            assert!((1..=3).contains(&y));
            let z = rng.gen_range(0usize..9);
            assert!(z < 9);
            let w = rng.gen_range(-(1i128 << 100)..(1i128 << 100));
            assert!((-(1i128 << 100)..(1i128 << 100)).contains(&w));
        }
    }

    #[test]
    fn range_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..3)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
