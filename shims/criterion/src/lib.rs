//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! Implements the API subset the workspace bench targets use — `Criterion`,
//! `benchmark_group` (with `sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — measuring wall-clock
//! time with adaptive iteration batching. No statistical machinery: each
//! benchmark reports min/mean/max over the sample set, printed as a table
//! and optionally recorded via [`Criterion::write_json_summary`].
//!
//! Honors `CRITERION_SAMPLE_MS` (target milliseconds per sample, default 20)
//! so CI can dial total bench time.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting a benchmarked
/// computation whose result is unused.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// One recorded measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// `group/function/parameter` path.
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Samples measured.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    result: Option<(f64, f64, f64, usize, u64)>,
}

impl Bencher {
    /// Measure `f`, called repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fill the per-sample budget?
        let budget = Duration::from_millis(
            std::env::var("CRITERION_SAMPLE_MS")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(20),
        );
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        let min = samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples_ns.iter().cloned().fold(0.0, f64::max);
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        self.result = Some((mean, min, max, samples_ns.len(), iters));
    }
}

/// Top-level benchmark registry.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Begin a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(self, None, id.to_string(), 10, f);
        self
    }

    /// All results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Print the final table (called by `criterion_main!`).
    pub fn final_summary(&self) {
        println!(
            "\n{:<44} {:>12} {:>12} {:>12}",
            "benchmark", "mean", "min", "max"
        );
        for r in &self.results {
            println!(
                "{:<44} {:>12} {:>12} {:>12}",
                r.id,
                fmt_ns(r.mean_ns),
                fmt_ns(r.min_ns),
                fmt_ns(r.max_ns)
            );
        }
    }

    /// Write all recorded results as a JSON array to `path`.
    ///
    /// Workspace extension (not in upstream criterion): bench targets use
    /// this to persist machine-readable results next to the repo's other
    /// recorded experiment outputs.
    pub fn write_json_summary(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut s = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            let _ = write!(
                s,
                "  {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}",
                r.id.replace('\\', "\\\\").replace('"', "\\\""),
                r.mean_ns,
                r.min_ns,
                r.max_ns,
                r.samples,
                r.iters_per_sample
            );
            s.push_str(if i + 1 < self.results.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("]\n");
        std::fs::write(path, s)
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a benchmark identified by a plain name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchId,
        f: F,
    ) -> &mut Self {
        run_one(
            self.c,
            Some(&self.name),
            id.into_bench_id(),
            self.sample_size,
            f,
        );
        self
    }

    /// Run a benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(self.c, Some(&self.name), id.id, self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (upstream flushes reports here; we print as we go).
    pub fn finish(&mut self) {}
}

/// Accepts both `&str` names and [`BenchmarkId`]s.
pub trait IntoBenchId {
    /// The path-component string for this id.
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.id
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    c: &mut Criterion,
    group: Option<&str>,
    id: String,
    sample_size: usize,
    mut f: F,
) {
    let full_id = match group {
        Some(g) => format!("{g}/{id}"),
        None => id,
    };
    let mut b = Bencher {
        sample_size,
        result: None,
    };
    f(&mut b);
    let (mean, min, max, samples, iters) =
        b.result.expect("benchmark closure must call Bencher::iter");
    println!(
        "bench {full_id:<42} mean {:>12}  ({samples} samples x {iters} iters)",
        fmt_ns(mean)
    );
    c.results.push(BenchResult {
        id: full_id,
        mean_ns: mean,
        min_ns: min,
        max_ns: max,
        samples,
        iters_per_sample: iters,
    });
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Collect benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
            g.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
                b.iter(|| (0..n).product::<u64>())
            });
            g.finish();
        }
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.results().len(), 3);
        assert_eq!(c.results()[0].id, "g/sum");
        assert_eq!(c.results()[1].id, "g/scaled/4");
        assert!(c.results().iter().all(|r| r.mean_ns > 0.0));
    }

    #[test]
    fn json_summary_roundtrips_shape() {
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        let mut c = Criterion::default();
        c.bench_function("x", |b| b.iter(|| black_box(2 * 2)));
        let dir = std::env::temp_dir().join("criterion_shim_test.json");
        c.write_json_summary(&dir).unwrap();
        let text = std::fs::read_to_string(&dir).unwrap();
        assert!(text.trim_start().starts_with('['));
        assert!(text.contains("\"id\": \"x\""));
        let _ = std::fs::remove_file(dir);
    }
}
