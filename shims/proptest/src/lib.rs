//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Implements the subset this workspace's property tests use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//!   header) running each test body over `cases` sampled inputs,
//! * integer range strategies (`lo..hi`, `lo..=hi`), [`any`] for primitive
//!   types, tuple strategies, string-regex strategies (a generative subset:
//!   literals, `[...]` classes, `?`, `{m}`, `{m,n}`), and
//!   [`collection::vec`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! On failure, inputs are **shrunk naively** before reporting: integers
//! halve toward their lower bound (plus a −1 step so exact boundaries are
//! reached), vectors try halves, element drops and element-wise shrinks,
//! tuples shrink one component at a time — greedy hill descent re-running
//! the test body until no candidate still fails, with a bounded attempt
//! budget. The panic message reports both the originally sampled inputs
//! and the minimal failing ones. (Upstream shrinks through the full
//! strategy tree; this is the offline approximation of the same idea.)
//!
//! Other differences from upstream, deliberate for an offline shim:
//! rejected cases (`prop_assume!`) are retried up to a bounded factor
//! rather than tracked by a global rejection budget, and sampled values
//! must be `Clone` (the shrinker re-runs the body). Sampling is
//! deterministic per test name unless `PROPTEST_SEED` overrides it.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Re-exported so the generated test bodies can name the rng type.
pub use rand as rand_crate;

/// What a single sampled case reported.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: discard the case, draw another.
    Reject,
    /// An assertion failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    /// Resolve the effective case count (`PROPTEST_CASES` overrides).
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 128 }
    }
}

/// Deterministic per-test RNG; `PROPTEST_SEED` overrides the base seed.
pub fn test_rng(test_name: &str) -> StdRng {
    let base: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5ee0_5ee0_5ee0_5ee0);
    // FNV-1a over the test name so each test gets its own stream.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(base ^ h)
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Candidate simplifications of a failing value, simplest first.
    /// Every candidate must stay inside the strategy's value space. The
    /// default is no shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Integer shrink candidates toward `lo`: the bound itself, the halfway
/// point, and one step down (so exact failure boundaries are reached).
macro_rules! int_candidates {
    ($lo:expr, $v:expr) => {{
        let lo = $lo;
        let v = $v;
        if v <= lo {
            Vec::new()
        } else {
            let mut out = vec![lo, lo + (v - lo) / 2, v - 1];
            out.retain(|x| *x >= lo && *x < v);
            out.dedup();
            out
        }
    }};
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                int_candidates!(self.start, *v)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                int_candidates!(*self.start(), *v)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128, u128);

/// Full-range strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Strategy over a type's whole value space (primitives only).
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_any_int {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                // Toward zero: zero itself, halving, one step inward.
                let v = *v;
                if v == 0 {
                    return Vec::new();
                }
                let step = if v > 0 { v - 1 } else { v + 1 };
                let mut out = vec![0, v / 2, step];
                out.retain(|x| *x != v);
                out.dedup();
                out
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, u128, i8, i16, i32, i64, isize, i128);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
    fn shrink(&self, v: &bool) -> Vec<bool> {
        if *v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                // One component at a time, the others held fixed.
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&v.$idx) {
                        let mut w = v.clone();
                        w.$idx = cand;
                        out.push(w);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Pin a test-body closure's argument type to `strat`'s value type (an
/// identity function; the macro-generated tuple patterns are otherwise
/// uninferable). Implementation detail of [`proptest!`].
#[doc(hidden)]
pub fn make_runner<S, F>(_strat: &S, f: F) -> F
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    f
}

/// Greedy shrink driver: walk the candidate lists of `strat` downhill,
/// keeping any candidate on which `run` still fails, until no candidate
/// fails or the attempt budget is spent. Returns the minimal failing
/// value, its failure message, and the number of successful shrink steps.
pub fn shrink_case<S, F>(
    strat: &S,
    mut case: S::Value,
    mut msg: String,
    run: &mut F,
) -> (S::Value, String, usize)
where
    S: Strategy,
    S::Value: Clone,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    const MAX_ATTEMPTS: usize = 4096;
    let mut steps = 0usize;
    let mut attempts = 0usize;
    'descend: loop {
        for cand in strat.shrink(&case) {
            attempts += 1;
            if attempts > MAX_ATTEMPTS {
                break 'descend;
            }
            // Shrink candidates were never sampled, so the body may
            // panic on them (e.g. setup unwraps) rather than fail via
            // prop_assert!; catch and treat a panic as a failure to keep
            // shrinking on — never let it eat the counterexample report.
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(cand.clone())));
            match outcome {
                Ok(Err(TestCaseError::Fail(m))) => {
                    case = cand;
                    msg = m;
                    steps += 1;
                    continue 'descend;
                }
                Ok(_) => {}
                Err(payload) => {
                    case = cand;
                    msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "panicked while shrinking".to_string());
                    steps += 1;
                    continue 'descend;
                }
            }
        }
        break;
    }
    (case, msg, steps)
}

// ------------------------------ string regex -------------------------------

/// `&str` strategies are generative regexes (subset: literal characters,
/// `[...]` classes with ranges, and `?` / `{m}` / `{m,n}` quantifiers).
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        sample_regex(self, rng)
    }
}

enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

struct Quantified {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_regex(pattern: &str) -> Vec<Quantified> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out: Vec<Quantified> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated class in regex strategy `{pattern}`"
                );
                i += 1; // past ']'
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                assert!(
                    i < chars.len(),
                    "trailing backslash in regex strategy `{pattern}`"
                );
                let c = chars[i];
                i += 1;
                match c {
                    'd' => Atom::Class(vec![('0', '9')]),
                    'w' => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    other => Atom::Literal(other),
                }
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated quantifier in regex strategy")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        out.push(Quantified { atom, min, max });
    }
    out
}

fn sample_regex(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    for q in parse_regex(pattern) {
        let reps = rng.gen_range(q.min..=q.max);
        for _ in 0..reps {
            match &q.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => {
                    let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                    out.push(
                        char::from_u32(rng.gen_range(lo as u32..=hi as u32)).expect("char range"),
                    );
                }
            }
        }
    }
    out
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: a fixed size or a range.
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }

        fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let n = v.len();
            let mut out = Vec::new();
            // Halving first (big jumps), then single element drops, both
            // respecting the strategy's minimum length.
            let half = n / 2;
            if half >= self.size.lo && half < n {
                out.push(v[..half].to_vec());
                out.push(v[half..].to_vec());
            }
            if n > self.size.lo {
                for i in 0..n {
                    let mut w = v.clone();
                    w.remove(i);
                    out.push(w);
                }
            }
            // Element-wise shrinks, one position at a time.
            for (i, x) in v.iter().enumerate() {
                for cand in self.element.shrink(x) {
                    let mut w = v.clone();
                    w[i] = cand;
                    out.push(w);
                }
            }
            out
        }
    }
}

/// Everything a property-test file needs, in one glob import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };

    /// Mirror of upstream's `prelude::prop` module path.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a property body; failure reports the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l,
            r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

/// Discard the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..100, v in prop::collection::vec(0i64..5, 3)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = config.effective_cases();
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                // The argument strategies as one tuple strategy, so the
                // shrinker can simplify the whole case at once.
                let strat_tuple = ($(($strat),)*);
                let mut runner = $crate::make_runner(&strat_tuple, |($($arg,)*)| {
                    $body
                    ::std::result::Result::Ok(())
                });
                let mut ran: u32 = 0;
                let mut rejected: u64 = 0;
                // Bounded rejection budget, like upstream (factor 256).
                let max_rejects = (cases as u64) * 256;
                while ran < cases {
                    // Snapshot the rng so a failing case can be
                    // regenerated for shrinking — the success path then
                    // moves the sampled values straight into the body
                    // without cloning them.
                    let rng_at_case = rng.clone();
                    let case = $crate::Strategy::sample(&strat_tuple, &mut rng);
                    match runner(case) {
                        ::std::result::Result::Ok(()) => { ran += 1; }
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            if rejected > max_rejects {
                                panic!(
                                    "proptest `{}`: too many prop_assume! rejections ({rejected})",
                                    stringify!($name)
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            // Regenerate the failing case from the rng
                            // snapshot, then shrink: halve/drop inputs
                            // while the body keeps failing, and report
                            // the minimum.
                            let case = $crate::Strategy::sample(&strat_tuple, &mut rng_at_case.clone());
                            let (min_case, min_msg, steps) =
                                $crate::shrink_case(&strat_tuple, case.clone(), msg.clone(), &mut runner);
                            panic!(
                                "proptest `{}` failed after {} cases: {}\n\
                                 inputs: {:#?}\n\
                                 minimal inputs ({} shrink steps): {:#?}\n\
                                 minimal failure: {}",
                                stringify!($name),
                                ran,
                                msg,
                                case,
                                steps,
                                min_case,
                                min_msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_samples_match_shape() {
        let mut rng = crate::test_rng("regex_shape");
        for _ in 0..200 {
            let s = crate::sample_regex("-?[1-9][0-9]{0,3}", &mut rng);
            let body = s.strip_prefix('-').unwrap_or(&s);
            assert!(!body.is_empty() && body.len() <= 4);
            assert!(!body.starts_with('0'));
            assert!(body.chars().all(|c| c.is_ascii_digit()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(x in 3i64..9, v in prop::collection::vec(0u32..5, 1..4), b in any::<bool>()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&e| e < 5));
            // Exercise the reject path on roughly half the cases.
            prop_assume!(b);
        }

        #[test]
        fn tuples_sample(pair in (0i64..5, 1i64..6)) {
            prop_assert!(pair.0 < 5 && pair.1 >= 1);
        }
    }

    // Defined without `#[test]` so the harness doesn't run it directly; the
    // `#[should_panic]` wrapper below exercises the failure path.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        fn always_fails(x in 0u8..10) {
            prop_assert!(x > 200, "x was {x}");
        }
    }

    #[test]
    #[should_panic(expected = "minimal inputs")]
    fn failure_reports_inputs() {
        always_fails();
    }

    #[test]
    fn integer_shrink_converges_to_the_failure_boundary() {
        // Fails iff x ≥ 17: the shrinker must land exactly on 17.
        let strat = (0u64..1000,);
        let mut runner = |(x,): (u64,)| {
            if x >= 17 {
                Err(TestCaseError::fail(format!("x={x}")))
            } else {
                Ok(())
            }
        };
        let (min, msg, steps) = crate::shrink_case(&strat, (900,), "x=900".into(), &mut runner);
        assert_eq!(min.0, 17);
        assert_eq!(msg, "x=17");
        assert!(steps > 0);
    }

    #[test]
    fn vec_shrink_drops_irrelevant_elements() {
        // Fails iff the vec contains a 3: minimal counterexample is [3].
        let strat = (prop::collection::vec(0u32..10, 1..12),);
        let mut runner = |(v,): (Vec<u32>,)| {
            if v.contains(&3) {
                Err(TestCaseError::fail(format!("{v:?}")))
            } else {
                Ok(())
            }
        };
        let seed = vec![7, 3, 9, 3, 1, 0, 5];
        let (min, _, _) = crate::shrink_case(&strat, (seed,), "seed".into(), &mut runner);
        assert_eq!(min.0, vec![3]);
    }

    #[test]
    fn tuple_shrink_minimizes_components_independently() {
        // Fails iff a + b ≥ 10; a minimum sits on the boundary.
        let strat = (0i64..100, 0i64..100);
        let mut runner = |(a, b): (i64, i64)| {
            if a + b >= 10 {
                Err(TestCaseError::fail(format!("{a}+{b}")))
            } else {
                Ok(())
            }
        };
        let (min, _, _) = crate::shrink_case(&strat, (60, 40), "60+40".into(), &mut runner);
        assert_eq!(min.0 + min.1, 10);
    }

    #[test]
    fn shrinking_survives_panicking_candidates() {
        // The body panics (setup-style) on 10..=20 and fails the property
        // above 20: the shrinker must treat the panics as failures and
        // keep descending instead of aborting the report.
        let strat = (0u64..100,);
        let mut runner = |(x,): (u64,)| {
            assert!(!(10..=20).contains(&x), "boom at {x}");
            if x > 20 {
                Err(TestCaseError::fail(format!("x={x}")))
            } else {
                Ok(())
            }
        };
        let (min, msg, _) = crate::shrink_case(&strat, (90,), "x=90".into(), &mut runner);
        assert_eq!(min.0, 10);
        assert!(msg.contains("boom at 10"), "msg: {msg}");
    }

    #[test]
    fn shrinking_respects_range_lower_bounds() {
        // Everything fails; the minimum must still respect `lo`.
        let strat = (5u8..50, prop::collection::vec(0u8..4, 2..6));
        let mut runner =
            |(_, _): (u8, Vec<u8>)| Err::<(), _>(TestCaseError::fail("always".to_string()));
        let (min, _, _) =
            crate::shrink_case(&strat, (47, vec![3, 3, 3, 3, 3]), "a".into(), &mut runner);
        assert_eq!(min.0, 5);
        assert_eq!(min.1.len(), 2);
    }
}
