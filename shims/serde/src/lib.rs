//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The build environment has no crates.io access, so this crate vendors the
//! trait surface the workspace uses. Serialization mirrors serde's real
//! design (a [`Serializer`] driven by [`Serialize`] impls, with
//! [`ser::SerializeSeq`]/[`ser::SerializeStruct`] sub-builders).
//! Deserialization is *simplified*: instead of serde's visitor machinery,
//! [`Deserializer`] exposes typed `take_*` accessors over an underlying
//! tree (the only deserializer in the workspace is `serde_json`'s
//! `Value`-backed one, which makes the accessors trivially implementable).
//! There is no derive macro — the few serializable structs in the
//! workspace hand-write their impls.

#![forbid(unsafe_code)]

use std::fmt::Display;

/// Deserialization-side error plumbing.
pub mod de {
    /// Errors constructible from a message, raised by `Deserialize` impls.
    pub trait Error: Sized + std::fmt::Display + std::fmt::Debug {
        /// Build an error carrying `msg`.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// Serialization-side error plumbing and sub-builders.
pub mod ser {
    use super::Serialize;

    /// Errors constructible from a message, raised by `Serialize` impls.
    pub trait Error: Sized + std::fmt::Display + std::fmt::Debug {
        /// Build an error carrying `msg`.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    /// Incremental sequence serializer returned by
    /// [`Serializer::serialize_seq`](super::Serializer::serialize_seq).
    pub trait SerializeSeq {
        /// Final output type.
        type Ok;
        /// Error type.
        type Error;
        /// Append one element.
        fn serialize_element<T: Serialize + ?Sized>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finish the sequence.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Incremental struct serializer returned by
    /// [`Serializer::serialize_struct`](super::Serializer::serialize_struct).
    pub trait SerializeStruct {
        /// Final output type.
        type Ok;
        /// Error type.
        type Error;
        /// Append one named field.
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finish the struct.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }
}

/// A data format that can serialize the serde data model.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: ser::Error;
    /// Sequence sub-builder.
    type SerializeSeq: ser::SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Struct sub-builder.
    type SerializeStruct: ser::SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

    /// Serialize a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serialize a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serialize an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Option::None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Option::Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Begin a sequence of `len` elements (if known).
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begin a struct with `len` fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
}

/// Types that can serialize themselves into any [`Serializer`].
pub trait Serialize {
    /// Drive `serializer` with this value's structure.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format that can be deserialized from.
///
/// Simplified model: deserializers are cheap handles (hence `Clone`) over a
/// parsed tree, and expose typed accessors instead of serde's visitors.
pub trait Deserializer<'de>: Sized + Clone {
    /// Error type.
    type Error: de::Error;

    /// Expect a string.
    fn take_str(self) -> Result<String, Self::Error>;
    /// Expect a boolean.
    fn take_bool(self) -> Result<bool, Self::Error>;
    /// Expect an unsigned integer.
    fn take_u64(self) -> Result<u64, Self::Error>;
    /// Expect a signed integer.
    fn take_i64(self) -> Result<i64, Self::Error>;
    /// Expect a float (integers coerce).
    fn take_f64(self) -> Result<f64, Self::Error>;
    /// Expect null-or-value; `None` for null.
    fn take_option(self) -> Result<Option<Self>, Self::Error>;
    /// Expect a sequence; returns one sub-deserializer per element.
    fn take_seq(self) -> Result<Vec<Self>, Self::Error>;
    /// Expect a map/struct and project the field `name`. Missing fields
    /// surface as `take_option() == None` on the projected handle, so
    /// optional fields deserialize cleanly.
    fn take_field(self, name: &'static str) -> Result<Self, Self::Error>;
}

/// Types that can deserialize themselves out of any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Extract `Self` from `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

// ---------------------------------------------------------------------------
// Blanket impls for the std types the workspace serializes.
// ---------------------------------------------------------------------------

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeSeq as _;
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<String, D::Error> {
        deserializer.take_str()
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<bool, D::Error> {
        deserializer.take_bool()
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<f64, D::Error> {
        deserializer.take_f64()
    }
}

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<$t, D::Error> {
                let v = deserializer.take_u64()?;
                <$t>::try_from(v).map_err(|_| de_overflow::<D::Error>(v))
            }
        }
    )*};
}
impl_deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<$t, D::Error> {
                let v = deserializer.take_i64()?;
                <$t>::try_from(v).map_err(|_| de_overflow::<D::Error>(v))
            }
        }
    )*};
}
impl_deserialize_int!(i8, i16, i32, i64, isize);

fn de_overflow<E: de::Error>(v: impl Display) -> E {
    E::custom(format!("integer {v} out of range for target type"))
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Option<T>, D::Error> {
        match deserializer.take_option()? {
            Some(inner) => T::deserialize(inner).map(Some),
            None => Ok(None),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Vec<T>, D::Error> {
        deserializer
            .take_seq()?
            .into_iter()
            .map(T::deserialize)
            .collect()
    }
}
