//! Offline stand-in for the [`serde_json`](https://crates.io/crates/serde_json)
//! crate: `to_string` / `to_string_pretty` / `from_str` over an in-memory
//! [`Value`] tree, implementing the workspace `serde` shim's traits.
//!
//! Supported JSON: objects, arrays, strings (with the standard escapes,
//! including `\uXXXX` and surrogate pairs), integers (`i64`/`u64` exact),
//! floats, booleans, null. Object key order is preserved (insertion order),
//! which keeps serialized output deterministic.

#![forbid(unsafe_code)]

use serde::{de, ser, Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;

/// Error for both parsing and (de)serialization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer (no decimal point or exponent, fits `i64`).
    Int(i64),
    /// Unsigned integer above `i64::MAX`.
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

// ---------------------------------------------------------------------------
// Serialization: T -> Value -> text.
// ---------------------------------------------------------------------------

/// Serialize `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(render(&to_value(value)?, None, 0))
}

/// Serialize `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(render(&to_value(value)?, Some(2), 0))
}

/// Serialize `value` into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    value.serialize(ValueSerializer)
}

struct ValueSerializer;

/// Sequence builder for [`ValueSerializer`].
pub struct SeqBuilder {
    items: Vec<Value>,
}

impl ser::SerializeSeq for SeqBuilder {
    type Ok = Value;
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.items.push(to_value(value)?);
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        Ok(Value::Array(self.items))
    }
}

/// Struct builder for [`ValueSerializer`].
pub struct StructBuilder {
    fields: Vec<(String, Value)>,
}

impl ser::SerializeStruct for StructBuilder {
    type Ok = Value;
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.fields.push((key.to_string(), to_value(value)?));
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(self.fields))
    }
}

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    type SerializeSeq = SeqBuilder;
    type SerializeStruct = StructBuilder;

    fn serialize_str(self, v: &str) -> Result<Value, Error> {
        Ok(Value::Str(v.to_string()))
    }

    fn serialize_bool(self, v: bool) -> Result<Value, Error> {
        Ok(Value::Bool(v))
    }

    fn serialize_u64(self, v: u64) -> Result<Value, Error> {
        Ok(match i64::try_from(v) {
            Ok(i) => Value::Int(i),
            Err(_) => Value::UInt(v),
        })
    }

    fn serialize_i64(self, v: i64) -> Result<Value, Error> {
        Ok(Value::Int(v))
    }

    fn serialize_f64(self, v: f64) -> Result<Value, Error> {
        if v.is_finite() {
            Ok(Value::Float(v))
        } else {
            Err(de::Error::custom("non-finite float has no JSON form"))
        }
    }

    fn serialize_none(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Value, Error> {
        to_value(value)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<SeqBuilder, Error> {
        Ok(SeqBuilder {
            items: Vec::with_capacity(len.unwrap_or(0)),
        })
    }

    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<StructBuilder, Error> {
        Ok(StructBuilder {
            fields: Vec::with_capacity(len),
        })
    }
}

fn render(v: &Value, indent: Option<usize>, depth: usize) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        Value::Float(x) => {
            // Round-trippable and never bare-integer-looking (keeps floats
            // distinguishable from ints on re-parse).
            let s = format!("{x}");
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Value::Str(s) => escape_str(s),
        Value::Array(items) => render_items(
            items
                .iter()
                .map(|it| render(it, indent, depth + 1))
                .collect(),
            ('[', ']'),
            indent,
            depth,
        ),
        Value::Object(fields) => render_items(
            fields
                .iter()
                .map(|(k, it)| {
                    let sep = if indent.is_some() { ": " } else { ":" };
                    format!("{}{}{}", escape_str(k), sep, render(it, indent, depth + 1))
                })
                .collect(),
            ('{', '}'),
            indent,
            depth,
        ),
    }
}

fn render_items(
    items: Vec<String>,
    (open, close): (char, char),
    indent: Option<usize>,
    depth: usize,
) -> String {
    if items.is_empty() {
        return format!("{open}{close}");
    }
    match indent {
        None => format!("{open}{}{close}", items.join(",")),
        Some(width) => {
            let pad = " ".repeat(width * (depth + 1));
            let pad_close = " ".repeat(width * depth);
            format!(
                "{open}\n{}\n{pad_close}{close}",
                items
                    .iter()
                    .map(|s| format!("{pad}{s}"))
                    .collect::<Vec<_>>()
                    .join(",\n"),
            )
        }
    }
}

fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Deserialization: text -> Value -> T.
// ---------------------------------------------------------------------------

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<T>(s: &str) -> Result<T, Error>
where
    T: for<'de> Deserialize<'de>,
{
    let value = parse(s)?;
    from_value(&value)
}

/// Deserialize out of an already-parsed [`Value`] tree.
pub fn from_value<T>(value: &Value) -> Result<T, Error>
where
    T: for<'de> Deserialize<'de>,
{
    T::deserialize(ValueDe { value })
}

/// Parse JSON text into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(de::Error::custom(format!(
            "trailing characters at byte {pos}"
        )));
    }
    Ok(value)
}

#[derive(Clone, Copy)]
struct ValueDe<'de> {
    value: &'de Value,
}

impl<'de> ValueDe<'de> {
    fn mismatch(&self, want: &str) -> Error {
        de::Error::custom(format!("expected {want}, found {}", self.value.type_name()))
    }
}

impl<'de> Deserializer<'de> for ValueDe<'de> {
    type Error = Error;

    fn take_str(self) -> Result<String, Error> {
        match self.value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(self.mismatch("string")),
        }
    }

    fn take_bool(self) -> Result<bool, Error> {
        match self.value {
            Value::Bool(b) => Ok(*b),
            _ => Err(self.mismatch("bool")),
        }
    }

    fn take_u64(self) -> Result<u64, Error> {
        match self.value {
            Value::Int(i) if *i >= 0 => Ok(*i as u64),
            Value::UInt(u) => Ok(*u),
            _ => Err(self.mismatch("unsigned integer")),
        }
    }

    fn take_i64(self) -> Result<i64, Error> {
        match self.value {
            Value::Int(i) => Ok(*i),
            _ => Err(self.mismatch("integer")),
        }
    }

    fn take_f64(self) -> Result<f64, Error> {
        match self.value {
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            Value::Float(x) => Ok(*x),
            _ => Err(self.mismatch("number")),
        }
    }

    fn take_option(self) -> Result<Option<Self>, Error> {
        match self.value {
            Value::Null => Ok(None),
            _ => Ok(Some(self)),
        }
    }

    fn take_seq(self) -> Result<Vec<Self>, Error> {
        match self.value {
            Value::Array(items) => Ok(items.iter().map(|value| ValueDe { value }).collect()),
            _ => Err(self.mismatch("array")),
        }
    }

    fn take_field(self, name: &'static str) -> Result<Self, Error> {
        match self.value {
            Value::Object(fields) => {
                // Missing fields project to null so `Option` fields work.
                const NULL: Value = Value::Null;
                Ok(fields
                    .iter()
                    .find(|(k, _)| k == name)
                    .map(|(_, value)| ValueDe { value })
                    .unwrap_or(ValueDe { value: &NULL }))
            }
            _ => Err(self.mismatch("object")),
        }
    }
}

// --------------------------- recursive-descent parser ----------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err(de::Error::custom("unexpected end of input"));
    };
    match b {
        b'n' => parse_keyword(bytes, pos, "null", Value::Null),
        b't' => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        b'f' => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Value::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => {
                        return Err(de::Error::custom(format!(
                            "expected ',' or ']' at byte {pos}"
                        )))
                    }
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(de::Error::custom(format!("expected ':' at byte {pos}")));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => {
                        return Err(de::Error::custom(format!(
                            "expected ',' or '}}' at byte {pos}"
                        )))
                    }
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        other => Err(de::Error::custom(format!(
            "unexpected byte {:?} at {pos}",
            other as char
        ))),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(de::Error::custom(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(de::Error::custom(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(de::Error::custom("unterminated string"));
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(de::Error::custom("unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{08}'),
                    b'f' => out.push('\u{0c}'),
                    b'u' => {
                        let hi = parse_hex4(bytes, pos)?;
                        let code = if (0xd800..0xdc00).contains(&hi) {
                            // Surrogate pair.
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let lo = parse_hex4(bytes, pos)?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(de::Error::custom(
                                        "high surrogate not followed by a low surrogate",
                                    ));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                return Err(de::Error::custom("lone high surrogate"));
                            }
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code).ok_or_else(|| -> Error {
                                de::Error::custom("invalid \\u escape")
                            })?,
                        );
                    }
                    other => {
                        return Err(de::Error::custom(format!(
                            "invalid escape \\{}",
                            other as char
                        )))
                    }
                }
            }
            _ => {
                // Re-decode UTF-8 starting at the byte we consumed.
                let start = *pos - 1;
                let rest = std::str::from_utf8(&bytes[start..])
                    .map_err(|_| -> Error { de::Error::custom("invalid UTF-8 in string") })?;
                let c = rest.chars().next().expect("nonempty by construction");
                out.push(c);
                *pos = start + c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, Error> {
    if *pos + 4 > bytes.len() {
        return Err(de::Error::custom("truncated \\u escape"));
    }
    let s = std::str::from_utf8(&bytes[*pos..*pos + 4])
        .map_err(|_| -> Error { de::Error::custom("invalid \\u escape") })?;
    let v = u32::from_str_radix(s, 16)
        .map_err(|_| -> Error { de::Error::custom("invalid \\u escape") })?;
    *pos += 4;
    Ok(v)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let mut is_float = false;
    if bytes.get(*pos) == Some(&b'.') {
        is_float = true;
        *pos += 1;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(&b'e') | Some(&b'E')) {
        is_float = true;
        *pos += 1;
        if matches!(bytes.get(*pos), Some(&b'+') | Some(&b'-')) {
            *pos += 1;
        }
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| -> Error { de::Error::custom("invalid number") })?;
    if !is_float {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| -> Error { de::Error::custom(format!("invalid number `{text}`")) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""é""#).unwrap(), Value::Str("é".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Value::Str("😀".into()));
        let back: String = from_str(&to_string("π 😀 \"q\" \\").unwrap()).unwrap();
        assert_eq!(back, "π 😀 \"q\" \\");
        // Explicit surrogate-pair escape, and the malformed variants.
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Value::Str("😀".into()));
        assert!(parse(r#""\ud800""#).is_err()); // lone high surrogate
        assert!(parse(r#""\ud800\u0041""#).is_err()); // high + non-low escape
        assert!(parse(r#""\ud800x""#).is_err()); // high + literal
    }

    #[test]
    fn nested_structure_roundtrip() {
        let v = Value::Object(vec![
            (
                "xs".into(),
                Value::Array(vec![Value::Int(1), Value::Null, Value::Str("s".into())]),
            ),
            ("flag".into(), Value::Bool(false)),
        ]);
        let compact = render(&v, None, 0);
        assert_eq!(compact, r#"{"xs":[1,null,"s"],"flag":false}"#);
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = render(&v, Some(2), 0);
        assert_eq!(parse(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  \"xs\""));
    }

    #[test]
    fn typed_roundtrip_via_traits() {
        let xs: Vec<Option<u64>> = vec![Some(3), None, Some(u64::MAX)];
        let json = to_string(&xs).unwrap();
        let back: Vec<Option<u64>> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("[1, 2").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("01x").is_err());
        assert!(from_str::<Vec<u64>>("[-1]").is_err());
    }
}
