//! # steadystate — steady-state scheduling on heterogeneous clusters
//!
//! A complete Rust implementation of the framework of Beaumont, Legrand,
//! Marchal & Robert, *"Steady-State Scheduling on Heterogeneous Clusters:
//! Why and How?"* (LIP RR-2004-11 / IPDPS 2004): instead of minimizing
//! makespan (NP-hard), maximize *sustained throughput* by solving a linear
//! program over per-resource activity fractions, then reconstruct an
//! explicitly periodic schedule that achieves the LP bound.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`num`] — exact big-integer / rational arithmetic,
//! * [`lp`] — the exact rational simplex solver,
//! * [`platform`] — heterogeneous platform graphs and generators,
//! * [`core`] — the steady-state LP formulations (master–slave, scatter,
//!   multicast, broadcast, reduce, all-to-all, DAG collections, §5.1
//!   model variants),
//! * [`schedule`] — period extraction, the §4.1 weighted bipartite
//!   edge-coloring orchestration, start-up grouping, fixed periods,
//! * [`sim`] — executable semantics (periodic executor, event kernel,
//!   §5.5 dynamic adaptation),
//! * [`service`] — the multi-tenant online scheduling service (one hot
//!   warm-started re-solve session per tenant behind a channel-based
//!   request loop),
//! * [`baselines`] — greedy/HEFT/fixed-tree competitors.
//!
//! ## Quickstart
//!
//! ```
//! use steadystate::platform::paper;
//! use steadystate::core::master_slave;
//! use steadystate::schedule::reconstruct_master_slave;
//! use steadystate::sim::simulate_master_slave;
//!
//! // The platform of the paper's Figure 1, master P1.
//! let (g, master) = paper::fig1();
//!
//! // §3.1: optimal steady-state throughput via the SSMS linear program.
//! let sol = master_slave::solve(&g, master).unwrap();
//! println!("ntask(G) = {} tasks per time unit", sol.ntask);
//!
//! // §4.1: reconstruct an explicit periodic schedule...
//! let sched = reconstruct_master_slave(&g, &sol);
//! assert!(sched.check(&g).is_ok());
//!
//! // ...and machine-check that executing it really delivers the bound.
//! let run = simulate_master_slave(&g, master, &sched, 20);
//! assert_eq!(run.per_period.last().unwrap(), &run.plan_per_period);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ss_baselines as baselines;
pub use ss_core as core;
pub use ss_lp as lp;
pub use ss_num as num;
pub use ss_platform as platform;
pub use ss_schedule as schedule;
pub use ss_service as service;
pub use ss_sim as sim;
